// netd suite: frame/protocol codec units, pollers, rate limiting, and
// the loopback conformance sweep — every registered protocol (and the
// tree drivers) run over a real socketpair through SocketChannel with
// transcripts byte-compared against the in-process SimulatedChannel
// run. Plus SyncDaemon end-to-end: handshake, manifest, multiplexed
// sessions, concurrency fan-out, eviction, deadlines, backpressure, and
// graceful drain. Labeled `net` in CTest.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "fsync/core/config_io.h"
#include "fsync/core/checkpoint.h"
#include "fsync/core/endpoint.h"
#include "fsync/netd/client.h"
#include "fsync/netd/daemon.h"
#include "fsync/netd/event_loop.h"
#include "fsync/netd/frame.h"
#include "fsync/netd/protocol.h"
#include "fsync/netd/rate.h"
#include "fsync/netd/reflector.h"
#include "fsync/netd/socket_channel.h"
#include "fsync/netd/sockets.h"
#include "fsync/store/fsstore.h"
#include "fsync/testing/corpus.h"
#include "fsync/testing/protocols.h"
#include "fsync/testing/tree_protocols.h"
#include "fsync/util/random.h"
#include "fsync/workload/tree.h"

namespace fsx::netd {
namespace {

// ---------------------------------------------------------------- frame

TEST(Frame, RoundTripsSingleRecord) {
  Bytes payload = ToBytes("the quick brown fox");
  Bytes frame = EncodeFrame(transport::kRecordTypeDaemon, 7, 3,
                            ByteSpan(payload.data(), payload.size()));
  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  auto rec = reader.Next();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->type, transport::kRecordTypeDaemon);
  EXPECT_EQ(rec->seq, 7u);
  EXPECT_EQ(rec->payload, payload);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(Frame, ReassemblesByteByByte) {
  // Three frames, fed one byte at a time, must come out whole and in
  // order — the incremental varint/length parser may never mis-split.
  std::vector<Bytes> payloads = {ToBytes("a"), Bytes(300, 0x42), Bytes{}};
  Bytes wire;
  uint32_t seq = 0;
  for (const Bytes& p : payloads) {
    Bytes f = EncodeFrame(transport::kRecordTypeDaemon, seq++, 0,
                          ByteSpan(p.data(), p.size()));
    wire.insert(wire.end(), f.begin(), f.end());
  }
  FrameReader reader;
  std::vector<Bytes> got;
  for (uint8_t b : wire) {
    reader.Feed(&b, 1);
    for (;;) {
      auto rec = reader.Next();
      if (!rec.ok()) {
        ASSERT_EQ(rec.status().code(), StatusCode::kNotFound);
        break;
      }
      got.push_back(rec->payload);
    }
  }
  EXPECT_EQ(got, payloads);
}

TEST(Frame, PoisonsOnCorruptRecord) {
  Bytes payload = ToBytes("payload");
  Bytes frame = EncodeFrame(transport::kRecordTypeDaemon, 0, 0,
                            ByteSpan(payload.data(), payload.size()));
  frame.back() ^= 0xFF;  // break the CRC
  FrameReader reader;
  reader.Feed(frame.data(), frame.size());
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(reader.poisoned());
  // Poisoning is permanent: a good frame after the bad one stays dead.
  Bytes good = EncodeFrame(transport::kRecordTypeDaemon, 1, 0,
                           ByteSpan(payload.data(), payload.size()));
  reader.Feed(good.data(), good.size());
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
}

TEST(Frame, RejectsOversizedFrame) {
  // A length header past the bound must poison immediately, without
  // waiting for (or allocating) the advertised bytes.
  uint8_t huge[10];
  size_t n = 0;
  uint64_t v = uint64_t{kMaxFrameBytes} + 1;
  while (v >= 0x80) {
    huge[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  huge[n++] = static_cast<uint8_t>(v);
  FrameReader reader;
  reader.Feed(huge, n);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(reader.poisoned());
}

// ------------------------------------------------------------- protocol

TEST(Protocol, DaemonMsgRoundTrip) {
  Bytes body = ToBytes("body bytes");
  Bytes wire = EncodeDaemonMsg(Msg::kFileMsg, 12345,
                               ByteSpan(body.data(), body.size()));
  auto msg = ParseDaemonMsg(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(msg.ok()) << msg.status().ToString();
  EXPECT_EQ(msg->msg, Msg::kFileMsg);
  EXPECT_EQ(msg->stream, 12345u);
  EXPECT_EQ(msg->body, body);
}

TEST(Protocol, HelloAndAckRoundTrip) {
  Bytes hello = EncodeHello();
  uint8_t version = 0;
  ASSERT_TRUE(
      ParseHello(ByteSpan(hello.data(), hello.size()), &version).ok());
  EXPECT_EQ(version, kDaemonVersion);

  HelloAck ack;
  ack.accepted = true;
  ack.config_digest = 0xDEADBEEFCAFEF00Dull;
  ack.config_text = SerializeSyncConfig(SyncConfig{});
  Bytes wire = EncodeHelloAck(ack);
  auto parsed = ParseHelloAck(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->accepted);
  EXPECT_EQ(parsed->config_digest, ack.config_digest);
  EXPECT_EQ(parsed->config_text, ack.config_text);
}

TEST(Protocol, HelloRejectsBadMagic) {
  Bytes hello = EncodeHello();
  hello[0] ^= 0x01;
  uint8_t version = 0;
  EXPECT_FALSE(
      ParseHello(ByteSpan(hello.data(), hello.size()), &version).ok());
}

TEST(Protocol, OpenFileAndFileMsgRoundTrip) {
  OpenFile open;
  open.kind = OpenKind::kResume;
  open.path = "dir/sub/file.txt";
  open.first_msg = Bytes(100, 0x5A);
  Bytes wire = EncodeOpenFile(open);
  auto parsed = ParseOpenFile(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, OpenKind::kResume);
  EXPECT_EQ(parsed->path, open.path);
  EXPECT_EQ(parsed->first_msg, open.first_msg);

  Bytes payload = ToBytes("round reply");
  Bytes fm = EncodeFileMsg(FileSub::kRoundReply,
                           ByteSpan(payload.data(), payload.size()));
  auto pf = ParseFileMsg(ByteSpan(fm.data(), fm.size()));
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  EXPECT_EQ(pf->first, FileSub::kRoundReply);
  EXPECT_EQ(pf->second, payload);
}

TEST(Protocol, ErrorRoundTrip) {
  Bytes wire = EncodeError(Status::NotFound("no such file: x"));
  auto err = ParseError(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_EQ(err->code, static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_EQ(err->detail, "no such file: x");
}

// ----------------------------------------------------------------- rate

TEST(Rate, TokenBucketGrantsAndRefills) {
  TokenBucket bucket(1000, 1000);  // 1000 B/s, 1000 B burst
  EXPECT_FALSE(bucket.unlimited());
  uint64_t t0 = 1'000'000;
  EXPECT_EQ(bucket.Grant(600, t0), 600u);
  EXPECT_EQ(bucket.Grant(600, t0), 400u);  // bucket drained
  EXPECT_EQ(bucket.Grant(600, t0), 0u);
  // Half a second refills half the bucket.
  EXPECT_EQ(bucket.Grant(600, t0 + 500'000), 500u);
  // Unused grant can be returned.
  bucket.Charge(0);
  EXPECT_GT(bucket.RefillDelayUs(100, t0 + 500'000), 0u);
}

TEST(Rate, ZeroRateIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.Grant(1u << 30, 0), uint64_t{1} << 30);
}

// -------------------------------------------------------------- pollers

void ExercisePoller(Poller& poller) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Fd rd(fds[0]), wr(fds[1]);
  ASSERT_TRUE(poller.Add(rd.get(), true, false).ok());

  std::vector<Poller::Event> events;
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty());  // nothing readable yet

  ASSERT_EQ(::write(wr.get(), "x", 1), 1);
  ASSERT_TRUE(poller.Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, rd.get());
  EXPECT_TRUE(events[0].readable);

  char c;
  ASSERT_EQ(::read(rd.get(), &c, 1), 1);
  ASSERT_TRUE(poller.Update(rd.get(), false, false).ok());
  ASSERT_EQ(::write(wr.get(), "y", 1), 1);
  ASSERT_TRUE(poller.Wait(0, &events).ok());
  EXPECT_TRUE(events.empty());  // interest masked off
  poller.Remove(rd.get());
}

TEST(Poller, PollBackend) {
  auto poller = MakePollPoller();
  ASSERT_NE(poller, nullptr);
  ExercisePoller(*poller);
}

TEST(Poller, EpollBackend) {
  auto poller = MakeEpollPoller();
  if (poller == nullptr) {
    GTEST_SKIP() << "epoll unavailable on this kernel";
  }
  ExercisePoller(*poller);
}

// ----------------------------------------------- loopback conformance

// Runs `entry` twice — over a SimulatedChannel and over a socketpair
// with a byte-reflecting peer — and requires bit-identical transcripts,
// stats, and reconstruction. This is the contract that lets every
// protocol in the library run over real sockets unmodified.
void ExpectSocketRunMatchesSimulated(const ProtocolEntry& entry,
                                     const CorpusPair& pair) {
  SimulatedChannel sim;
  sim.EnableTranscript();
  auto sim_result = entry.run(pair.f_old, pair.f_new, sim, nullptr);
  ASSERT_TRUE(sim_result.ok())
      << entry.name << "/" << pair.Label() << ": "
      << sim_result.status().ToString();

  auto fds = StreamSocketPair();
  ASSERT_TRUE(fds.ok()) << fds.status().ToString();
  Reflector reflector(std::move(fds->second));
  SocketChannel sock(fds->first.get());
  sock.EnableTranscript();
  auto sock_result = entry.run(pair.f_old, pair.f_new, sock, nullptr);
  ASSERT_TRUE(sock_result.ok())
      << entry.name << "/" << pair.Label() << ": "
      << sock_result.status().ToString();

  EXPECT_EQ(sock_result->reconstructed, pair.f_new)
      << entry.name << "/" << pair.Label();
  EXPECT_EQ(sock.stats().client_to_server_bytes,
            sim.stats().client_to_server_bytes)
      << entry.name << "/" << pair.Label();
  EXPECT_EQ(sock.stats().server_to_client_bytes,
            sim.stats().server_to_client_bytes)
      << entry.name << "/" << pair.Label();
  EXPECT_EQ(sock.stats().roundtrips, sim.stats().roundtrips)
      << entry.name << "/" << pair.Label();

  ASSERT_EQ(sock.transcript().size(), sim.transcript().size())
      << entry.name << "/" << pair.Label();
  for (size_t i = 0; i < sim.transcript().size(); ++i) {
    ASSERT_EQ(sock.transcript()[i].dir, sim.transcript()[i].dir)
        << entry.name << "/" << pair.Label() << " message " << i;
    ASSERT_EQ(sock.transcript()[i].payload, sim.transcript()[i].payload)
        << entry.name << "/" << pair.Label() << " message " << i;
  }
  // The physical stream really carried everything (framing overhead on
  // top of the logical payload bytes, both directions echoed).
  EXPECT_GE(sock.physical_bytes_sent(),
            sim.stats().total_bytes());
}

TEST(LoopbackConformance, AllProtocolsAllShapesMatchSimulated) {
  const uint64_t seed = SeedFromEnv(29);
  for (const ProtocolEntry& entry : ConformanceProtocols()) {
    for (CorpusShape shape : AllCorpusShapes()) {
      ExpectSocketRunMatchesSimulated(entry, MakeCorpusPair(shape, seed));
    }
  }
}

TEST(LoopbackConformance, TreeProtocolsMatchSimulated) {
  TreeChurnProfile profile = ReleaseTreeProfile(60);
  profile.seed = SeedFromEnv(31);
  TreePair pair = MakeTreeWorkload(profile);
  for (const TreeProtocolEntry& entry : TreeConformanceProtocols()) {
    SimulatedChannel sim;
    sim.EnableTranscript();
    auto sim_result = entry.run(pair.old_tree, pair.new_tree, sim, nullptr);
    ASSERT_TRUE(sim_result.ok())
        << entry.name << ": " << sim_result.status().ToString();

    auto fds = StreamSocketPair();
    ASSERT_TRUE(fds.ok()) << fds.status().ToString();
    Reflector reflector(std::move(fds->second));
    SocketChannel sock(fds->first.get());
    sock.EnableTranscript();
    auto sock_result =
        entry.run(pair.old_tree, pair.new_tree, sock, nullptr);
    ASSERT_TRUE(sock_result.ok())
        << entry.name << ": " << sock_result.status().ToString();

    EXPECT_EQ(sock_result->reconstructed, pair.new_tree) << entry.name;
    EXPECT_EQ(sock.stats().total_bytes(), sim.stats().total_bytes())
        << entry.name;
    ASSERT_EQ(sock.transcript().size(), sim.transcript().size())
        << entry.name;
    for (size_t i = 0; i < sim.transcript().size(); ++i) {
      ASSERT_EQ(sock.transcript()[i].payload, sim.transcript()[i].payload)
          << entry.name << " message " << i;
    }
  }
}

TEST(LoopbackConformance, TornFrameIsCaughtByCrc) {
  // A fault injector that garbles frame tails must surface as a channel
  // error (CRC poisoning) — never as delivered-but-wrong payload.
  FaultPlan plan;
  plan.seed = 99;
  plan.torn_frame = 1.0;  // every write torn
  FaultInjector fault(plan);
  auto fds = StreamSocketPair();
  ASSERT_TRUE(fds.ok());
  Reflector reflector(std::move(fds->second));
  SocketChannel sock(fds->first.get(), &fault);
  sock.set_receive_timeout_ms(2000);
  Bytes payload = ToBytes("this payload will be torn on the wire");
  sock.Send(SimulatedChannel::Direction::kClientToServer,
            ByteSpan(payload.data(), payload.size()));
  auto got = sock.Receive(SimulatedChannel::Direction::kClientToServer);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- daemon

Collection SmallServerTree() {
  TreeChurnProfile profile = ReleaseTreeProfile(40);
  profile.seed = 0x5EED;
  return MakeTreeWorkload(profile).new_tree;
}

Collection StaleLocalTree() {
  TreeChurnProfile profile = ReleaseTreeProfile(40);
  profile.seed = 0x5EED;
  return MakeTreeWorkload(profile).old_tree;
}

TEST(Daemon, SingleClientFullSync) {
  Collection server_tree = SmallServerTree();
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_NE(daemon.port(), 0);

  ClientOptions opts;
  opts.port = daemon.port();
  auto result = RunSyncClient(StaleLocalTree(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reconstructed, server_tree);
  EXPECT_EQ(result->files_total, server_tree.size());
  EXPECT_GT(result->files_unchanged, 0u);
  EXPECT_GT(result->files_sessioned, 0u);
  EXPECT_EQ(result->files_aborted, 0u);

  // Drain, not Stop: Stop() is immediate and may tear the connection
  // down before the loop has processed the client's trailing
  // kCloseStream/kGoodbye records, undercounting sessions_completed.
  daemon.Drain();
  daemon.Join();
  DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.sessions_opened, result->files_sessioned);
  EXPECT_EQ(stats.sessions_completed, result->files_sessioned);
  EXPECT_EQ(stats.open_connections, 0u);
}

TEST(Daemon, EmptyLocalReplicaBootstraps) {
  Collection server_tree = SmallServerTree();
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());
  ClientOptions opts;
  opts.port = daemon.port();
  auto result = RunSyncClient(Collection{}, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reconstructed, server_tree);
  EXPECT_EQ(result->files_new, server_tree.size());
}

TEST(Daemon, UnixDomainSocket) {
  Collection server_tree = SmallServerTree();
  DaemonOptions options;
  options.unix_path = ::testing::TempDir() + "/fsx-netd-test.sock";
  SyncDaemon daemon(server_tree, options);
  ASSERT_TRUE(daemon.Start().ok());
  ClientOptions opts;
  opts.unix_path = options.unix_path;
  auto result = RunSyncClient(StaleLocalTree(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reconstructed, server_tree);
}

TEST(Daemon, PollBackendServesClients) {
  Collection server_tree = SmallServerTree();
  DaemonOptions options;
  options.force_poll = true;
  SyncDaemon daemon(server_tree, options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_STREQ(daemon.poller_name(), "poll");
  ClientOptions opts;
  opts.port = daemon.port();
  auto result = RunSyncClient(StaleLocalTree(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reconstructed, server_tree);
}

TEST(Daemon, ServesManyConcurrentClientsBitIdentical) {
  // The ISSUE acceptance bar: >= 64 concurrent loopback clients, every
  // replica bit-identical to the server tree (which is itself what a
  // SimulatedChannel session run converges to — the daemon carries the
  // same endpoint messages, so equality of trees is equality of runs).
  constexpr int kClients = 64;
  Collection server_tree = SmallServerTree();
  Collection stale = StaleLocalTree();
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  std::vector<StatusOr<ClientResult>> results(
      kClients, Status::Internal("not run"));
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        ClientOptions opts;
        opts.port = daemon.port();
        // Mix of stale and empty replicas, all converging to the tree.
        results[i] = RunSyncClient(i % 4 == 0 ? Collection{} : stale, opts);
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].ok())
        << "client " << i << ": " << results[i].status().ToString();
    EXPECT_EQ(results[i]->reconstructed, server_tree) << "client " << i;
  }
  daemon.Drain();  // graceful: process trailing records before exit
  daemon.Join();
  DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.sessions_opened, stats.sessions_completed);
  EXPECT_EQ(stats.open_connections, 0u);
}

// Raw-socket helper for the protocol-level daemon tests: a minimal
// hand-rolled client speaking just enough of the daemon protocol.
class RawClient {
 public:
  static StatusOr<RawClient> Connect(uint16_t port) {
    auto fd = ConnectTcp("127.0.0.1", port);
    FSYNC_RETURN_IF_ERROR(fd.status());
    return RawClient(std::move(*fd));
  }

  Status Send(Msg msg, uint64_t stream, ByteSpan body) {
    Bytes payload = EncodeDaemonMsg(msg, stream, body);
    Bytes frame = EncodeFrame(transport::kRecordTypeDaemon, seq_++, 0,
                              ByteSpan(payload.data(), payload.size()));
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = ::send(fd_.get(), frame.data() + off, frame.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        return Status::Unavailable("raw send failed");
      }
      off += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  StatusOr<DaemonMsg> Recv(int timeout_ms = 5000) {
    uint8_t buf[4096];
    for (;;) {
      auto rec = reader_.Next();
      if (rec.ok()) {
        return ParseDaemonMsg(
            ByteSpan(rec->payload.data(), rec->payload.size()));
      }
      if (rec.status().code() != StatusCode::kNotFound) {
        return rec.status();
      }
      pollfd p{fd_.get(), POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) {
        return Status::Unavailable("raw recv timed out");
      }
      ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
      if (n <= 0) {
        return Status::Unavailable("raw peer closed");
      }
      reader_.Feed(buf, static_cast<size_t>(n));
    }
  }

  Status Handshake() {
    Bytes hello = EncodeHello();
    FSYNC_RETURN_IF_ERROR(
        Send(Msg::kHello, 0, ByteSpan(hello.data(), hello.size())));
    FSYNC_ASSIGN_OR_RETURN(DaemonMsg ack, Recv());
    if (ack.msg != Msg::kHelloAck) {
      return Status::DataLoss("expected hello ack");
    }
    return Status::Ok();
  }

  /// True when the server has closed this connection (EOF within
  /// `timeout_ms`).
  bool WaitForEof(int timeout_ms) {
    uint8_t buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
      int remain = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count());
      if (remain <= 0) {
        return false;
      }
      pollfd p{fd_.get(), POLLIN, 0};
      if (::poll(&p, 1, remain) <= 0) {
        continue;
      }
      ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
      if (n <= 0) {
        return true;
      }
    }
  }

  int fd() const { return fd_.get(); }

 private:
  explicit RawClient(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  FrameReader reader_;
  uint32_t seq_ = 0;
};

TEST(Daemon, HandshakeDeadlineClosesSilentConnections) {
  DaemonOptions options;
  options.limits.handshake_deadline_us = 50'000;  // 50 ms
  SyncDaemon daemon(SmallServerTree(), options);
  ASSERT_TRUE(daemon.Start().ok());

  auto raw = RawClient::Connect(daemon.port());
  ASSERT_TRUE(raw.ok());
  // Say nothing; the daemon must hang up on its own.
  EXPECT_TRUE(raw->WaitForEof(5000));
  daemon.Stop();
  daemon.Join();
  EXPECT_GE(daemon.stats().deadline_expirations, 1u);
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(Daemon, ConnectionCapEvictsOldestIdle) {
  DaemonOptions options;
  options.max_connections = 1;
  SyncDaemon daemon(SmallServerTree(), options);
  ASSERT_TRUE(daemon.Start().ok());

  auto first = RawClient::Connect(daemon.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Handshake().ok());

  // Second client pushes past the cap; the idle first one is evicted
  // and the newcomer is served.
  auto second = RawClient::Connect(daemon.port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->Handshake().ok());

  EXPECT_TRUE(first->WaitForEof(5000));
  daemon.Stop();
  daemon.Join();
  EXPECT_GE(daemon.stats().connections_evicted, 1u);
}

TEST(Daemon, BackpressureStallsSlowReaders) {
  // A client that requests a large reply and stops reading must trip
  // the write-queue high watermark: the daemon registers a backpressure
  // stall and pauses reads instead of buffering unboundedly. A big
  // manifest (thousands of entries) queued against a tiny watermark
  // crosses it deterministically.
  Collection tree;
  for (int i = 0; i < 3000; ++i) {
    tree["dir" + std::to_string(i % 10) + "/file-" + std::to_string(i)] =
        ToBytes("contents " + std::to_string(i));
  }
  DaemonOptions options;
  options.limits.write_queue_high_bytes = 64 * 1024;
  options.limits.write_queue_low_bytes = 16 * 1024;
  SyncDaemon daemon(std::move(tree), options);
  ASSERT_TRUE(daemon.Start().ok());

  auto raw = RawClient::Connect(daemon.port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->Handshake().ok());
  ASSERT_TRUE(raw->Send(Msg::kManifestRequest, 0, ByteSpan()).ok());

  // Read nothing until the stall registers.
  bool stalled = false;
  for (int i = 0; i < 200 && !stalled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    stalled = daemon.stats().backpressure_stalls > 0;
  }
  EXPECT_TRUE(stalled);

  // Once the slow reader catches up, the connection must be perfectly
  // usable again: the manifest arrives intact and goodbye closes clean.
  auto manifest = raw->Recv();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->msg, Msg::kManifest);
  EXPECT_GT(manifest->body.size(), 64u * 1024);
  ASSERT_TRUE(raw->Send(Msg::kGoodbye, 0, ByteSpan()).ok());
  EXPECT_TRUE(raw->WaitForEof(5000));
  daemon.Stop();
  daemon.Join();
  EXPECT_GE(daemon.stats().backpressure_stalls, 1u);
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(Daemon, GracefulDrainFinishesInFlightAndRefusesNew) {
  SyncDaemon daemon(SmallServerTree(), DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  auto raw = RawClient::Connect(daemon.port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->Handshake().ok());

  daemon.Drain();
  // The connected client is told, then new session opens are refused.
  auto msg = raw->Recv();
  ASSERT_TRUE(msg.ok()) << msg.status().ToString();
  EXPECT_EQ(msg->msg, Msg::kDraining);

  SyncConfig config;
  SyncClientEndpoint ep(ByteSpan(), config);
  OpenFile open;
  open.path = "nonexistent";
  open.first_msg = ep.MakeRequest();
  Bytes body = EncodeOpenFile(open);
  ASSERT_TRUE(raw->Send(Msg::kOpenFile, 1,
                        ByteSpan(body.data(), body.size()))
                  .ok());
  auto refusal = raw->Recv();
  ASSERT_TRUE(refusal.ok()) << refusal.status().ToString();
  EXPECT_EQ(refusal->msg, Msg::kError);

  ASSERT_TRUE(raw->Send(Msg::kGoodbye, 0, ByteSpan()).ok());
  EXPECT_TRUE(raw->WaitForEof(5000));
  daemon.Join();  // drain completes once the last connection is gone

  // Listener is down: nobody new gets in.
  EXPECT_FALSE(RawClient::Connect(daemon.port()).ok());
  EXPECT_GE(daemon.stats().connections_drained, 1u);
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(Daemon, DrainWithNoConnectionsExitsImmediately) {
  SyncDaemon daemon(SmallServerTree(), DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());
  daemon.Drain();
  daemon.Join();
  EXPECT_FALSE(RawClient::Connect(daemon.port()).ok());
}

// A hostile server must not be able to smuggle unsafe paths into the
// client: the manifest is validated with IsSafeRelativePath before any
// session (or any checkpoint file name) is derived from it.
TEST(Daemon, ClientRejectsHostileManifest) {
  uint16_t port = 0;
  auto listener_or = ListenTcp("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener_or.ok());
  Fd listener = std::move(*listener_or);

  std::thread evil_server([fd = listener.get()] {
    pollfd lp{fd, POLLIN, 0};
    if (::poll(&lp, 1, 5000) <= 0) {
      return;
    }
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      return;
    }
    Fd c(conn);
    FrameReader reader;
    uint32_t seq = 0;
    auto send_msg = [&](Msg msg, ByteSpan body) {
      Bytes payload = EncodeDaemonMsg(msg, 0, body);
      Bytes frame = EncodeFrame(transport::kRecordTypeDaemon, seq++, 0,
                                ByteSpan(payload.data(), payload.size()));
      size_t off = 0;
      while (off < frame.size()) {
        ssize_t n = ::send(c.get(), frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
          return;
        }
        off += static_cast<size_t>(n);
      }
    };
    uint8_t buf[4096];
    int replies = 0;
    while (replies < 2) {
      auto rec = reader.Next();
      if (rec.ok()) {
        auto msg =
            ParseDaemonMsg(ByteSpan(rec->payload.data(),
                                    rec->payload.size()));
        if (!msg.ok()) {
          return;
        }
        if (msg->msg == Msg::kHello) {
          HelloAck ack;
          ack.accepted = true;
          SyncConfig config;
          ack.config_digest = ConfigWireDigest(config);
          ack.config_text = SerializeSyncConfig(config);
          Bytes body = EncodeHelloAck(ack);
          send_msg(Msg::kHelloAck, ByteSpan(body.data(), body.size()));
          ++replies;
        } else if (msg->msg == Msg::kManifestRequest) {
          Manifest evil;
          evil["../../etc/passwd"] = ManifestEntry{};
          Bytes body = SerializeManifest(evil);
          send_msg(Msg::kManifest, ByteSpan(body.data(), body.size()));
          ++replies;
        }
        continue;
      }
      pollfd p{c.get(), POLLIN, 0};
      if (::poll(&p, 1, 5000) <= 0) {
        return;
      }
      ssize_t n = ::recv(c.get(), buf, sizeof(buf), 0);
      if (n <= 0) {
        return;
      }
      reader.Feed(buf, static_cast<size_t>(n));
    }
    // Hold the socket open until the client has reacted.
    pollfd p{c.get(), POLLIN, 0};
    ::poll(&p, 1, 5000);
  });

  ClientOptions opts;
  opts.port = port;
  opts.io_timeout_ms = 5000;
  auto result = RunSyncClient(Collection{}, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  evil_server.join();
}

}  // namespace
}  // namespace fsx::netd
