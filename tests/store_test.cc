#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fsync/store/fsstore.h"
#include "fsync/util/random.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

Collection SampleCollection(uint64_t seed) {
  Rng rng(seed);
  Collection c;
  c["a.txt"] = SynthSourceFile(rng, 1000);
  c["dir/b.txt"] = SynthSourceFile(rng, 3000);
  c["dir/deep/c.bin"] = rng.RandomBytes(500);
  c["empty"] = Bytes{};
  return c;
}

TEST_F(StoreTest, StoreLoadRoundTrip) {
  Collection files = SampleCollection(1);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, files);
}

TEST_F(StoreTest, DeleteExtraMirrors) {
  Collection files = SampleCollection(2);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  Collection fewer = files;
  fewer.erase("dir/b.txt");
  ASSERT_TRUE(StoreTree(root_, fewer, /*delete_extra=*/true).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fewer);
}

TEST_F(StoreTest, KeepExtraPreserves) {
  Collection files = SampleCollection(3);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  Collection fewer;
  fewer["new.txt"] = ToBytes("hello");
  ASSERT_TRUE(StoreTree(root_, fewer, /*delete_extra=*/false).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), files.size() + 1);
}

TEST_F(StoreTest, RejectsUnsafePaths) {
  Collection evil;
  evil["../escape"] = ToBytes("nope");
  EXPECT_FALSE(StoreTree(root_, evil, false).ok());
  Collection evil2;
  evil2["/absolute"] = ToBytes("nope");
  EXPECT_FALSE(StoreTree(root_, evil2, false).ok());
}

TEST_F(StoreTest, LoadMissingDirectoryFails) {
  auto r = LoadTree(root_ + "/does_not_exist");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  Collection files = SampleCollection(4);
  Manifest m = BuildManifest(files);
  Bytes wire = SerializeManifest(m);
  auto back = ParseManifest(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, m);
}

TEST(ManifestTest, ParseRejectsGarbage) {
  EXPECT_TRUE(ParseManifest(Bytes{}).ok());  // empty manifest is valid
  EXPECT_FALSE(ParseManifest(ToBytes("not a manifest\n")).ok());
  EXPECT_FALSE(ParseManifest(ToBytes("deadbeef 12 x\n")).ok());  // short fp
  EXPECT_FALSE(
      ParseManifest(ToBytes(std::string(32, 'a') + " 12 x")).ok());  // no \n
  EXPECT_FALSE(
      ParseManifest(ToBytes(std::string(32, 'a') + " notanum x\n")).ok());
}

TEST_F(StoreTest, VerifyDetectsTampering) {
  Collection files = SampleCollection(5);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  auto clean = VerifyTree(root_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->empty());

  // Tamper with one file, add another, remove a third.
  {
    std::ofstream out(fs::path(root_) / "a.txt", std::ios::app);
    out << "tampered";
  }
  {
    std::ofstream out(fs::path(root_) / "sneaky.txt");
    out << "new";
  }
  fs::remove(fs::path(root_) / "dir/b.txt");

  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok());
  std::vector<std::string> want = {"a.txt", "dir/b.txt", "sneaky.txt"};
  EXPECT_EQ(*dirty, want);
}

TEST_F(StoreTest, ManifestExcludedFromLoad) {
  Collection files = SampleCollection(6);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, files);  // .fsx-manifest not part of the content
}

}  // namespace
}  // namespace fsx
