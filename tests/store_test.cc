#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fsync/store/fsstore.h"
#include "fsync/util/random.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

Collection SampleCollection(uint64_t seed) {
  Rng rng(seed);
  Collection c;
  c["a.txt"] = SynthSourceFile(rng, 1000);
  c["dir/b.txt"] = SynthSourceFile(rng, 3000);
  c["dir/deep/c.bin"] = rng.RandomBytes(500);
  c["empty"] = Bytes{};
  return c;
}

TEST_F(StoreTest, StoreLoadRoundTrip) {
  Collection files = SampleCollection(1);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, files);
}

TEST_F(StoreTest, DeleteExtraMirrors) {
  Collection files = SampleCollection(2);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  Collection fewer = files;
  fewer.erase("dir/b.txt");
  ASSERT_TRUE(StoreTree(root_, fewer, /*delete_extra=*/true).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fewer);
}

TEST_F(StoreTest, KeepExtraPreserves) {
  Collection files = SampleCollection(3);
  ASSERT_TRUE(StoreTree(root_, files, false).ok());
  Collection fewer;
  fewer["new.txt"] = ToBytes("hello");
  ASSERT_TRUE(StoreTree(root_, fewer, /*delete_extra=*/false).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), files.size() + 1);
}

TEST_F(StoreTest, RejectsUnsafePaths) {
  Collection evil;
  evil["../escape"] = ToBytes("nope");
  EXPECT_FALSE(StoreTree(root_, evil, false).ok());
  Collection evil2;
  evil2["/absolute"] = ToBytes("nope");
  EXPECT_FALSE(StoreTree(root_, evil2, false).ok());
}

TEST(SafePathTest, AcceptsOrdinaryRelativePaths) {
  for (const char* good :
       {"a", "a.txt", "dir/b.txt", "dir/deep/c.bin", "with space/f",
        ".hidden", "dir/.dotfile", "a..b", "..a", "trailing.", "a/..b/c",
        "unicode/\xc3\xa9.txt"}) {
    EXPECT_TRUE(IsSafeRelativePath(good)) << good;
  }
}

TEST(SafePathTest, RejectsEscapesAndMalformedPaths) {
  for (const char* evil :
       {"", "/", "/etc/passwd", "../escape", "..", ".",
        "dir/../../escape", "dir/..", "a//b", "a/", "/a", "./a", "a/./b",
        "a\\b", "..\\escape", "dir/../sibling"}) {
    EXPECT_FALSE(IsSafeRelativePath(evil)) << evil;
  }
  // Embedded NUL (can truncate a C path downstream).
  std::string nul = "a";
  nul.push_back('\0');
  nul += "b";
  EXPECT_FALSE(IsSafeRelativePath(nul));
}

TEST_F(StoreTest, LoadMissingDirectoryFails) {
  auto r = LoadTree(root_ + "/does_not_exist");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  Collection files = SampleCollection(4);
  Manifest m = BuildManifest(files);
  Bytes wire = SerializeManifest(m);
  auto back = ParseManifest(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, m);
}

TEST(ManifestTest, ParseRejectsGarbage) {
  EXPECT_TRUE(ParseManifest(Bytes{}).ok());  // empty manifest is valid
  EXPECT_FALSE(ParseManifest(ToBytes("not a manifest\n")).ok());
  EXPECT_FALSE(ParseManifest(ToBytes("deadbeef 12 x\n")).ok());  // short fp
  EXPECT_FALSE(
      ParseManifest(ToBytes(std::string(32, 'a') + " 12 x")).ok());  // no \n
  EXPECT_FALSE(
      ParseManifest(ToBytes(std::string(32, 'a') + " notanum x\n")).ok());
}

TEST_F(StoreTest, VerifyDetectsTampering) {
  Collection files = SampleCollection(5);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  auto clean = VerifyTree(root_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->empty());

  // Tamper with one file, add another, remove a third.
  {
    std::ofstream out(fs::path(root_) / "a.txt", std::ios::app);
    out << "tampered";
  }
  {
    std::ofstream out(fs::path(root_) / "sneaky.txt");
    out << "new";
  }
  fs::remove(fs::path(root_) / "dir/b.txt");

  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok());
  std::vector<std::string> want = {"a.txt", "dir/b.txt", "sneaky.txt"};
  EXPECT_EQ(*dirty, want);
}

TEST_F(StoreTest, ManifestExcludedFromLoad) {
  Collection files = SampleCollection(6);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, files);  // .fsx-manifest not part of the content
}

TEST_F(StoreTest, VerifyWithoutManifestIsNotFound) {
  Collection files = SampleCollection(7);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/false).ok());
  auto r = VerifyTree(root_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, VerifyFlagsTruncatedFile) {
  Collection files = SampleCollection(8);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  fs::resize_file(fs::path(root_) / "dir/b.txt",
                  files["dir/b.txt"].size() / 2);
  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  std::vector<std::string> want = {"dir/b.txt"};
  EXPECT_EQ(*dirty, want);
}

TEST_F(StoreTest, VerifyFlagsExtraFile) {
  Collection files = SampleCollection(9);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  std::ofstream(fs::path(root_) / "extra.txt") << "not in the manifest";
  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok());
  std::vector<std::string> want = {"extra.txt"};
  EXPECT_EQ(*dirty, want);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(StoreTest, LoadRefusesSymlinks) {
  Collection files = SampleCollection(10);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  // A symlink could alias content from outside the tree; LoadTree must
  // refuse it rather than follow it.
  fs::create_symlink(fs::path(root_) / "a.txt",
                     fs::path(root_) / "sneaky_link");
  auto r = LoadTree(root_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}
#endif

TEST_F(StoreTest, InternalArtifactsExcludedFromLoadAndMirroring) {
  Collection files = SampleCollection(11);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  // Simulate debris from an interrupted apply: a staged temp (for a
  // file not in this collection) and an in-place journal next to real
  // content.
  std::ofstream(fs::path(root_) / "ghost.txt.fsx-tmp") << "staged";
  std::ofstream(fs::path(root_) / "dir/b.txt.fsx-journal") << "journal";

  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, files);  // artifacts are not content

  // Mirror-mode rewrite must not treat the artifacts as "extra files"
  // to delete — recovery owns them, not the mirroring pass.
  ASSERT_TRUE(StoreTree(root_, files, /*delete_extra=*/true, true).ok());
  EXPECT_TRUE(fs::exists(fs::path(root_) / "ghost.txt.fsx-tmp"));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "dir/b.txt.fsx-journal"));
}

TEST_F(StoreTest, StoreTreeLeavesNoTempsBehind) {
  Collection files = SampleCollection(12);
  ASSERT_TRUE(StoreTree(root_, files, true, /*write_manifest=*/true).ok());
  for (auto it = fs::recursive_directory_iterator(root_);
       it != fs::recursive_directory_iterator(); ++it) {
    EXPECT_FALSE(it->path().filename().string().ends_with(".fsx-tmp"))
        << it->path();
  }
}

TEST_F(StoreTest, CheckpointRemovalCleansStrandedTemp) {
  fs::create_directories(root_);
  std::string path = root_ + "/session.ckpt";
  std::ofstream(path) << "checkpoint";
  std::ofstream(path + ".tmp") << "stranded temp from a crashed save";

  // Loading ignores (and clears) the stranded temp.
  auto loaded = LoadCheckpointFile(path);  // "checkpoint" isn't parseable,
  EXPECT_FALSE(loaded.ok());               // but the temp is gone either way
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  std::ofstream(path + ".tmp") << "stranded again";
  EXPECT_TRUE(RemoveCheckpointFile(path).ok());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Removing what is already gone stays OK.
  EXPECT_TRUE(RemoveCheckpointFile(path).ok());
}

}  // namespace
}  // namespace fsx
