// Cross-module end-to-end scenarios: release-pair and web-collection
// synchronization with the full protocol stack, plus cost-shape checks
// tying the implementation back to the paper's headline claims.
#include <gtest/gtest.h>

#include "fsync/core/collection.h"
#include "fsync/core/session.h"
#include "fsync/rsync/rsync.h"
#include "fsync/workload/release.h"
#include "fsync/workload/web.h"

namespace fsx {
namespace {

ReleasePair SmallRelease() {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 30;
  p.max_file_bytes = 32 * 1024;
  return MakeRelease(p);
}

TEST(Integration, ReleasePairSyncsExactly) {
  ReleasePair pair = SmallRelease();
  SyncConfig config;
  auto r = SyncCollection(pair.old_release, pair.new_release, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, pair.new_release);
}

TEST(Integration, ProtocolBeatsRsyncOnRelease) {
  ReleasePair pair = SmallRelease();
  SyncConfig config;
  RsyncParams rsync_params;  // default 700-byte blocks

  auto ours = SyncCollection(pair.old_release, pair.new_release, config);
  auto theirs =
      SyncCollectionRsync(pair.old_release, pair.new_release, rsync_params);
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(theirs.ok());
  // The paper reports 1.5-3x savings over rsync; require at least 1.2x
  // on this small sample to avoid flakiness.
  EXPECT_LT(ours->stats.total_bytes() * 12,
            theirs->stats.total_bytes() * 10);
}

TEST(Integration, ProtocolWithinFactorOfDeltaLowerBound) {
  ReleasePair pair = SmallRelease();
  SyncConfig config;
  auto ours = SyncCollection(pair.old_release, pair.new_release, config);
  auto bound =
      CollectionDeltaBytes(pair.old_release, pair.new_release,
                           DeltaCodec::kZd);
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(bound.ok());
  // Paper: within ~1.5-2x of the delta compressor. Allow 3x headroom.
  EXPECT_LT(ours->stats.total_bytes(), *bound * 3);
}

TEST(Integration, WebCollectionDailySync) {
  WebProfile p;
  p.num_pages = 40;
  p.max_page_bytes = 16 * 1024;
  WebCollectionModel model(p);
  SyncConfig config;
  auto r = SyncCollection(model.Snapshot(0), model.Snapshot(1), config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, model.Snapshot(1));
  EXPECT_GT(r->files_unchanged, 0u);
}

TEST(Integration, LongerGapsCostMore) {
  WebProfile p;
  p.num_pages = 40;
  p.max_page_bytes = 16 * 1024;
  WebCollectionModel model(p);
  SyncConfig config;
  auto day1 = SyncCollection(model.Snapshot(0), model.Snapshot(1), config);
  auto day7 = SyncCollection(model.Snapshot(0), model.Snapshot(7), config);
  ASSERT_TRUE(day1.ok());
  ASSERT_TRUE(day7.ok());
  EXPECT_LT(day1->stats.total_bytes(), day7->stats.total_bytes());
}

TEST(Integration, MapQualityDrivesDeltaSize) {
  // Disabling the entire map phase (roundtrip cap 1) must cost more in
  // delta bytes than the full multi-round protocol.
  ReleasePair pair = SmallRelease();
  SyncConfig full;
  SyncConfig capped;
  capped.max_roundtrips = 1;
  auto with_map = SyncCollection(pair.old_release, pair.new_release, full);
  auto no_map = SyncCollection(pair.old_release, pair.new_release, capped);
  ASSERT_TRUE(with_map.ok());
  ASSERT_TRUE(no_map.ok());
  EXPECT_EQ(no_map->reconstructed, pair.new_release);
  EXPECT_LT(with_map->delta_bytes, no_map->delta_bytes);
}

TEST(Integration, VcdiffPhaseTwoAlsoWorks) {
  ReleasePair pair = SmallRelease();
  SyncConfig config;
  config.delta_codec = DeltaCodec::kVcdiff;
  auto r = SyncCollection(pair.old_release, pair.new_release, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reconstructed, pair.new_release);
}

}  // namespace
}  // namespace fsx
