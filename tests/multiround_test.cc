#include <gtest/gtest.h>

#include "fsync/multiround/multiround.h"
#include "fsync/rsync/rsync.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

MultiroundResult MustSync(const Bytes& f_old, const Bytes& f_new,
                          const MultiroundParams& params) {
  SimulatedChannel channel;
  auto r = MultiroundSynchronize(f_old, f_new, params, channel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, f_new);
  return std::move(*r);
}

TEST(Multiround, UnchangedFileShortCircuits) {
  Rng rng(1);
  Bytes f = SynthSourceFile(rng, 30000);
  MultiroundParams params;
  MultiroundResult r = MustSync(f, f, params);
  EXPECT_LT(r.stats.total_bytes(), 64u);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Multiround, SmallEditResolvesMostBlocks) {
  Rng rng(2);
  Bytes f_old = SynthSourceFile(rng, 100000);
  EditProfile ep;
  ep.num_edits = 5;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  MultiroundParams params;
  MultiroundResult r = MustSync(f_old, f_new, params);
  EXPECT_GT(r.matched_fraction, 0.7);
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 4);
  EXPECT_GT(r.rounds, 1);
}

TEST(Multiround, EmptyEdgeCases) {
  Rng rng(3);
  Bytes f = SynthSourceFile(rng, 10000);
  MultiroundParams params;
  EXPECT_EQ(MustSync({}, f, params).reconstructed, f);
  EXPECT_TRUE(MustSync(f, {}, params).reconstructed.empty());
  EXPECT_TRUE(MustSync({}, {}, params).reconstructed.empty());
}

TEST(Multiround, NewFileSmallerThanMinBlockSize) {
  // F_new below min_block_size cannot host even one block; recursion must
  // bottom out immediately and fall through to literals.
  Rng rng(30);
  Bytes f_old = SynthSourceFile(rng, 20000);
  Bytes f_new = rng.RandomBytes(17);
  MultiroundParams params;
  params.min_block_size = 64;
  EXPECT_EQ(MustSync(f_old, f_new, params).reconstructed, f_new);
  // And the mirrored case: tiny F_old against a full-size F_new.
  EXPECT_EQ(MustSync(f_new, f_old, params).reconstructed, f_old);
}

TEST(Multiround, OldFileSmallerThanStartBlockSize) {
  // F_old fits inside a single top-level block: round 0 has exactly one
  // hash to offer and everything hinges on the recursion split.
  Rng rng(31);
  Bytes f_old = SynthSourceFile(rng, 300);
  MultiroundParams params;
  params.start_block_size = 2048;
  Bytes f_new = f_old;
  Bytes tail = rng.RandomBytes(40);
  Append(f_new, tail);
  EXPECT_EQ(MustSync(f_old, f_new, params).reconstructed, f_new);
}

TEST(Multiround, NonPowerOfTwoTails) {
  // Sizes chosen so every recursion level ends with a partial block; the
  // tail block shrinks below min_block_size on the last level.
  Rng rng(32);
  MultiroundParams params;
  params.start_block_size = 1024;
  params.min_block_size = 128;
  for (size_t size : {size_t{1}, size_t{127}, size_t{1025}, size_t{65539},
                      size_t{100001}}) {
    Bytes f_old = SynthSourceFile(rng, size);
    EditProfile ep;
    ep.num_edits = 3;
    Bytes f_new = ApplyEdits(f_old, ep, rng);
    EXPECT_EQ(MustSync(f_old, f_new, params).reconstructed, f_new)
        << "size=" << size;
  }
}

TEST(Multiround, GearWeakHashRoundTrips) {
  // use_gear swaps the weak-hash family on both endpoints; every shape
  // that works under tabled Adler must reconstruct under GEAR too.
  Rng rng(33);
  MultiroundParams params;
  params.use_gear = true;
  Bytes f = SynthSourceFile(rng, 60000);
  EXPECT_EQ(MustSync(f, f, params).reconstructed, f);
  EXPECT_EQ(MustSync({}, f, params).reconstructed, f);
  EXPECT_TRUE(MustSync(f, {}, params).reconstructed.empty());
  EXPECT_TRUE(MustSync({}, {}, params).reconstructed.empty());
  for (size_t size : {size_t{1}, size_t{127}, size_t{1025}, size_t{65539}}) {
    Bytes f_old = SynthSourceFile(rng, size);
    EditProfile ep;
    ep.num_edits = 3;
    Bytes f_new = ApplyEdits(f_old, ep, rng);
    EXPECT_EQ(MustSync(f_old, f_new, params).reconstructed, f_new)
        << "size=" << size;
  }
}

TEST(Multiround, GearStillResolvesMostBlocks) {
  // GEAR is a protocol swap, not a quality downgrade: on the standard
  // small-edit workload it must match blocks about as well as Adler.
  Rng rng(34);
  Bytes f_old = SynthSourceFile(rng, 100000);
  EditProfile ep;
  ep.num_edits = 5;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  MultiroundParams params;
  params.use_gear = true;
  MultiroundResult r = MustSync(f_old, f_new, params);
  EXPECT_GT(r.matched_fraction, 0.7);
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 4);
}

TEST(Multiround, GearIsAProtocolParameterNotAnExecutionKnob) {
  // Unlike num_threads or the dispatch tier, flipping use_gear changes
  // the wire bytes (different weak keys land in the bitmaps), so both
  // endpoints must agree on it out of band. Pin that the transcripts
  // actually diverge — if they ever became identical, GEAR would be
  // silently ignored.
  Rng rng(35);
  Bytes f_old = SynthSourceFile(rng, 50000);
  EditProfile ep;
  ep.num_edits = 4;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  auto run = [&](bool use_gear) {
    MultiroundParams params;
    params.use_gear = use_gear;
    SimulatedChannel channel;
    channel.EnableTranscript();
    auto r = MultiroundSynchronize(f_old, f_new, params, channel);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->reconstructed, f_new);
    return channel.transcript();
  };
  auto adler = run(false);
  auto gear = run(true);
  bool diverged = adler.size() != gear.size();
  for (size_t i = 0; !diverged && i < adler.size(); ++i) {
    diverged = adler[i].payload != gear[i].payload;
  }
  EXPECT_TRUE(diverged) << "use_gear did not change the wire traffic";
}

TEST(Multiround, GearTranscriptStableAcrossThreadCounts) {
  // num_threads stays a pure execution knob in GEAR mode: serial and
  // pooled runs must emit byte-identical traffic.
  Rng rng(36);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 6;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  auto run = [&](int num_threads) {
    MultiroundParams params;
    params.use_gear = true;
    params.num_threads = num_threads;
    SimulatedChannel channel;
    channel.EnableTranscript();
    auto r = MultiroundSynchronize(f_old, f_new, params, channel);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->reconstructed, f_new);
    return channel.transcript();
  };
  auto serial = run(1);
  auto pooled = run(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].payload, pooled[i].payload) << "message " << i;
  }
}

TEST(Multiround, InvalidParamsRejected) {
  SimulatedChannel ch;
  Bytes a = ToBytes("x");
  MultiroundParams bad;
  bad.start_block_size = 999;
  EXPECT_FALSE(MultiroundSynchronize(a, a, bad, ch).ok());
  MultiroundParams bad2;
  bad2.weak_bits = 40;
  SimulatedChannel ch2;
  EXPECT_FALSE(MultiroundSynchronize(a, a, bad2, ch2).ok());
}

class MultiroundFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiroundFuzz, AlwaysReconstructs) {
  Rng rng(GetParam());
  Bytes f_old = SynthSourceFile(rng, 1 + rng.Uniform(50000));
  EditProfile ep;
  ep.num_edits = static_cast<int>(rng.Uniform(30));
  ep.locality = rng.NextDouble();
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  MultiroundParams params;
  params.start_block_size = 512u << rng.Uniform(4);
  params.min_block_size = 64u << rng.Uniform(3);
  params.weak_bits = 16 + static_cast<int>(rng.Uniform(17));
  params.strong_bits = static_cast<int>(rng.Uniform(25));
  MustSync(f_old, f_new, params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiroundFuzz,
                         ::testing::Range<uint64_t>(0, 24));

TEST(Multiround, SitsBetweenRsyncAndFullProtocolExpectation) {
  // Sanity on the baseline ladder: multiround rsync should beat classic
  // rsync on lightly edited large files (recursion prunes matched
  // regions), since that is precisely the prior result the paper cites.
  Rng rng(4);
  Bytes f_old = SynthSourceFile(rng, 200000);
  EditProfile ep;
  ep.num_edits = 4;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  MultiroundParams mp;
  MultiroundResult mr = MustSync(f_old, f_new, mp);

  RsyncParams rp;  // default 700-byte blocks
  SimulatedChannel ch;
  auto rr = RsyncSynchronize(f_old, f_new, rp, ch);
  ASSERT_TRUE(rr.ok());
  EXPECT_LT(mr.stats.total_bytes(), rr->stats.total_bytes());
}

TEST(Multiround, WeakHashesStillEndCorrect) {
  // Absurdly weak hashes force false matches; the fingerprint check and
  // fallback keep the result correct.
  Rng rng(5);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  MultiroundParams params;
  params.weak_bits = 8;
  params.strong_bits = 0;
  MultiroundResult r = MustSync(f_old, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);
}

}  // namespace
}  // namespace fsx
