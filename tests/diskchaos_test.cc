// Disk-fault sweeps for the durable-apply subsystem — the storage-fault
// analogue of the kill-point crash suite (crash_test.cc). Each sweep
// counts the vfs operations a scenario performs, then re-runs it once
// per op index with a FaultVfs armed to fail exactly that operation,
// asserting the degradation contract: the operation surfaces a typed
// error (or survives via its retry path — never silent success on
// unverified bytes), every file is bit-exactly old or new, and a
// fault-free RecoverTree plus re-apply converges with no debris.
//
// Runs in-process (a disk fault is an error return, not a process
// death), so the whole suite is asan/tsan-clean by construction.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "fsync/obs/sync_obs.h"
#include "fsync/store/apply.h"
#include "fsync/store/journal.h"
#include "fsync/store/vfs.h"
#include "fsync/store/vfs_fault.h"
#include "fsync/testing/diskfault.h"

namespace fsx::store {
namespace {

namespace fs = std::filesystem;
using fsx::testing::CountDiskOps;
using fsx::testing::DiskFaultRun;
using fsx::testing::RunWithDiskFaultAt;

Bytes FileBytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Bytes{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
}

Collection OldTree() {
  Collection c;
  c["keep.txt"] = ToBytes("keep me exactly as I am");
  c["change.txt"] = ToBytes("old content of the changed file");
  c["dir/nested.bin"] = ToBytes("old nested bytes");
  c["doomed.txt"] = ToBytes("this file gets deleted");
  return c;
}

Collection NewTree() {
  Collection c = OldTree();
  c["change.txt"] = ToBytes("NEW content, longer than the old one was");
  c["dir/nested.bin"] = ToBytes("NEW nested");
  c["added.txt"] = ToBytes("a brand new file");
  c.erase("doomed.txt");
  return c;
}

class DiskChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_diskchaos_" + std::to_string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->random_seed()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void ResetTree() {
    fs::remove_all(root_);
    ASSERT_TRUE(StoreTree(root_, OldTree(), true, true).ok());
  }

  StatusOr<ApplyReport> RunApply(obs::SyncObserver* obs = nullptr) {
    return ApplyTree(root_, NewTree(), BuildManifest(OldTree()), {}, obs);
  }

  /// The per-file contract under a disk fault: every surviving path is
  /// bit-exactly its old or new version — never torn, never foreign.
  void ExpectOldOrNew(const std::string& context) {
    Collection old_files = OldTree();
    Collection new_files = NewTree();
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok()) << context << ": " << disk.status().ToString();
    for (const auto& [name, data] : *disk) {
      bool is_old = old_files.contains(name) && old_files.at(name) == data;
      bool is_new = new_files.contains(name) && new_files.at(name) == data;
      EXPECT_TRUE(is_old || is_new)
          << context << ": torn or foreign content in " << name;
    }
    for (const auto& [name, data] : old_files) {
      if (!new_files.contains(name)) {
        continue;  // deletion in flight: old or absent are both fine
      }
      EXPECT_TRUE(disk->contains(name))
          << context << ": " << name << " vanished";
    }
  }

  void ExpectNoApplyDebris(const std::string& context) {
    for (auto it = fs::recursive_directory_iterator(root_);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) {
        continue;
      }
      std::string name = it->path().filename().string();
      EXPECT_FALSE(name.ends_with(kTempSuffix))
          << context << ": stranded temp " << it->path();
      EXPECT_FALSE(name.ends_with(kJournalSuffix))
          << context << ": surviving journal " << it->path();
    }
  }

  /// Fault-free convergence: recover, re-apply, verify clean.
  void ExpectConverges(const std::string& context) {
    auto rec = RecoverTree(root_);
    ASSERT_TRUE(rec.ok()) << context << ": " << rec.status().ToString();
    ExpectOldOrNew(context + " post-recovery");
    ExpectNoApplyDebris(context + " post-recovery");
    auto redo = RunApply();
    ASSERT_TRUE(redo.ok()) << context << ": " << redo.status().ToString();
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok()) << context;
    EXPECT_EQ(*disk, NewTree()) << context << ": re-apply did not converge";
    auto dirty = VerifyTree(root_);
    ASSERT_TRUE(dirty.ok()) << context;
    EXPECT_TRUE(dirty->empty()) << context << ": manifest disagrees";
  }

  /// One full op-index sweep of the tree apply under `fault_errno`.
  void SweepTreeApply(int fault_errno, const char* what) {
    ResetTree();
    uint64_t total = CountDiskOps([&] { return RunApply().ok(); });
    ASSERT_GT(total, 0u) << "apply performed no vfs ops";

    for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
      std::string ctx =
          std::string(what) + " fault at op " + std::to_string(n);
      ResetTree();
      Status failure = Status::Ok();
      DiskFaultRun run = RunWithDiskFaultAt(n, fault_errno, [&] {
        auto r = RunApply();
        failure = r.status();
        return r.ok();
      });
      ASSERT_GT(run.faults_injected, 0u) << ctx << ": fault never fired";
      if (!run.fn_ok) {
        // A surfaced failure must be typed, never a bare kInternal.
        EXPECT_NE(failure.code(), StatusCode::kInternal)
            << ctx << ": untyped error: " << failure.ToString();
        EXPECT_NE(failure.code(), StatusCode::kOk) << ctx;
      }
      ExpectOldOrNew(ctx + " pre-recovery");
      ExpectConverges(ctx);
    }
  }

  std::string root_;
};

// ---------------------------------------------------------------------------
// Tree apply sweeps
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, TreeApplySurvivesEioAtEveryOp) {
  SweepTreeApply(EIO, "EIO");
}

TEST_F(DiskChaosTest, TreeApplySurvivesEnospcAtEveryOp) {
  SweepTreeApply(ENOSPC, "ENOSPC");
}

TEST_F(DiskChaosTest, TreeApplySurvivesStickyEioAtEveryOp) {
  // Sticky: the disk stays broken for the rest of the run — the retry
  // ladder must give up with a typed error, and a later clean disk must
  // still converge.
  ResetTree();
  uint64_t total = CountDiskOps([&] { return RunApply().ok(); });
  ASSERT_GT(total, 0u);
  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "sticky EIO at op " + std::to_string(n);
    ResetTree();
    Status failure = Status::Ok();
    DiskFaultRun run = RunWithDiskFaultAt(
        n, EIO,
        [&] {
          auto r = RunApply();
          failure = r.status();
          return r.ok();
        },
        /*path_pattern=*/"", /*sticky=*/true);
    ASSERT_GT(run.faults_injected, 0u) << ctx;
    EXPECT_FALSE(run.fn_ok) << ctx << ": sticky EIO reported success";
    EXPECT_TRUE(failure.code() == StatusCode::kUnavailable ||
                failure.code() == StatusCode::kDataLoss ||
                failure.code() == StatusCode::kNotFound)
        << ctx << ": " << failure.ToString();
    ExpectOldOrNew(ctx + " pre-recovery");
    ExpectConverges(ctx);
  }
}

// ---------------------------------------------------------------------------
// Recovery under fault
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, RecoverySurvivesEioAtEveryOp) {
  // Produce a genuinely interrupted apply: a sticky EIO partway through
  // leaves a journal and staged temps behind.
  auto interrupt = [&] {
    ResetTree();
    DiskFaultRun run = RunWithDiskFaultAt(
        12, EIO, [&] { return RunApply().ok(); }, "", /*sticky=*/true);
    ASSERT_GT(run.faults_injected, 0u);
    ASSERT_FALSE(run.fn_ok);
  };

  interrupt();
  uint64_t total = CountDiskOps([&] { return RecoverTree(root_).ok(); });
  // An interrupted apply may have aborted cleanly already; recovery then
  // fires few ops, but never zero (the directory walk's journal probe).
  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "recovery fault at op " + std::to_string(n);
    interrupt();
    Status failure = Status::Ok();
    DiskFaultRun run = RunWithDiskFaultAt(n, EIO, [&] {
      auto r = RecoverTree(root_);
      failure = r.status();
      return r.ok();
    });
    if (run.faults_injected == 0) {
      continue;  // this interrupted state fires fewer ops than the probe
    }
    if (!run.fn_ok) {
      EXPECT_NE(failure.code(), StatusCode::kOk) << ctx;
    }
    ExpectOldOrNew(ctx + " pre-clean-recovery");
    ExpectConverges(ctx);  // recovery is idempotent: clean re-run finishes
  }
}

// ---------------------------------------------------------------------------
// In-place apply sweep
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, InPlaceApplySurvivesEioAtEveryOp) {
  Bytes old_content = ToBytes(
      "0123456789abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnop");
  Bytes new_content = ToBytes("zyxw0123456789abcdefghijklmnopqrstuv");

  fs::path target = fs::path(root_) / "inplace.bin";
  auto reset = [&] {
    fs::remove_all(root_);
    fs::create_directories(root_);
    std::ofstream(target, std::ios::binary)
        .write(reinterpret_cast<const char*>(old_content.data()),
               static_cast<std::streamsize>(old_content.size()));
  };
  auto plan = [&] {
    // One literal plus one backward-overlapping copy exercises read,
    // write, truncate, and both journal appends.
    std::vector<ReconstructCommand> cmds;
    ReconstructCommand lit;
    lit.kind = ReconstructCommand::kLiteral;
    lit.target_offset = 0;
    lit.literal = ToBytes("zyxw");
    cmds.push_back(lit);
    ReconstructCommand cp;
    cp.kind = ReconstructCommand::kCopy;
    cp.target_offset = 4;
    cp.source_offset = 0;
    cp.length = new_content.size() - 4;
    cmds.push_back(cp);
    return cmds;
  };
  auto run = [&] {
    return InPlaceApplyFile(target.string(), plan(), new_content.size())
        .ok();
  };

  reset();
  uint64_t total = CountDiskOps(run);
  ASSERT_GT(total, 0u) << "in-place apply performed no vfs ops";

  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "in-place fault at op " + std::to_string(n);
    reset();
    DiskFaultRun r = RunWithDiskFaultAt(n, EIO, run);
    ASSERT_GT(r.faults_injected, 0u) << ctx;

    // Recovery must leave the bit-exact old file (rollback) or the new
    // one (the fault hit at/after the commit record) — never torn.
    auto rec = RecoverInPlaceFile(target.string());
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    Bytes now = FileBytes(target);
    EXPECT_TRUE(now == old_content || now == new_content)
        << ctx << ": torn in-place file";
    EXPECT_FALSE(fs::exists(target.string() + kJournalSuffix)) << ctx;

    // The in-place plan is only valid against the old content; re-apply
    // (and check convergence) only when the rollback restored it.
    if (now == old_content) {
      ASSERT_TRUE(run()) << ctx;
      EXPECT_EQ(ToString(FileBytes(target)), ToString(new_content)) << ctx;
    }
  }
}

// ---------------------------------------------------------------------------
// ENOSPC budget: abort and roll back, never half-apply
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, EnospcMidTransactionAbortsAndRollsBack) {
  ResetTree();
  obs::SyncObserver obs;
  Status failure = Status::Ok();
  {
    FaultVfs vfs;
    DiskFaultRule rule;
    rule.enospc_after_bytes = 64;  // room for the journal, not the files
    vfs.AddRule(rule);
    ScopedVfs scoped(&vfs);
    auto r = RunApply(&obs);
    failure = r.status();
    EXPECT_FALSE(r.ok());
    EXPECT_GT(vfs.faults_injected(), 0u);
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted)
      << failure.ToString();
  EXPECT_GE(obs.event_count(obs::Event::kEnospcAbort), 1u);
  ExpectOldOrNew("post-ENOSPC");
  ExpectConverges("post-ENOSPC");
}

// ---------------------------------------------------------------------------
// fsyncgate: a failed fsync is never reported as success
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, FailedFsyncWithStaleReadsIsRepairedOrTyped) {
  ResetTree();
  uint64_t fsync_failures_before =
      GlobalVfsCounters().fsync_failures.load();
  obs::SyncObserver obs;
  Status result = Status::Ok();
  {
    FaultVfs vfs;
    DiskFaultRule rule;
    rule.fsync_stale = true;  // one-shot: fsync fails AND content reverts
    rule.path_pattern = "change.txt";
    vfs.AddRule(rule);
    ScopedVfs scoped(&vfs);
    auto r = RunApply(&obs);
    result = r.status();
    EXPECT_GT(vfs.faults_injected(), 0u) << "fsyncgate never armed";
  }
  EXPECT_GT(GlobalVfsCounters().fsync_failures.load(),
            fsync_failures_before)
      << "failed fsync was not counted";
  if (result.ok()) {
    // The retry path repaired the file: it must hold the verified new
    // bytes, not the stale pre-fsync content the fault restored.
    EXPECT_GE(obs.event_count(obs::Event::kDiskRetry), 1u);
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ(*disk, NewTree()) << "success claimed over stale bytes";
  } else {
    EXPECT_TRUE(result.code() == StatusCode::kDataLoss ||
                result.code() == StatusCode::kUnavailable)
        << result.ToString();
    ExpectOldOrNew("fsyncgate failure path");
  }
  ExpectConverges("fsyncgate");
}

TEST_F(DiskChaosTest, StickyFsyncFailureSurfacesTypedErrorNotSuccess) {
  ResetTree();
  Status result = Status::Ok();
  {
    FaultVfs vfs;
    DiskFaultRule rule;
    rule.op_mask = VfsOpBit(VfsOp::kFsync);
    rule.fail_at_op = 0;
    rule.fail_errno = EIO;
    rule.sticky = true;
    rule.path_pattern = std::string("change.txt") + kTempSuffix;
    vfs.AddRule(rule);
    ScopedVfs scoped(&vfs);
    auto r = RunApply();
    result = r.status();
    EXPECT_GE(vfs.faults_injected(), 2u)
        << "retry did not re-attempt the fsync";
  }
  ASSERT_FALSE(result.ok()) << "persistent fsync failure reported success";
  EXPECT_EQ(result.code(), StatusCode::kDataLoss) << result.ToString();
  ExpectOldOrNew("sticky fsync");
  ExpectConverges("sticky fsync");
}

// ---------------------------------------------------------------------------
// Hostile store inputs: typed status, no crash, no silent success
// ---------------------------------------------------------------------------

TEST_F(DiskChaosTest, JournalThatIsADirectoryIsATypedError) {
  ResetTree();
  fs::create_directory(fs::path(root_) / kJournalName);
  auto contents = ReadJournal(fs::path(root_) / kJournalName);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kFailedPrecondition)
      << contents.status().ToString();
  // Recovery refuses to conclude "nothing in flight" from an unreadable
  // journal.
  auto rec = RecoverTree(root_);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
  fs::remove(fs::path(root_) / kJournalName);
}

TEST_F(DiskChaosTest, CheckpointThatIsADirectoryIsATypedError) {
  fs::create_directories(root_);
  fs::path cp = fs::path(root_) / "session.ckpt";
  fs::create_directory(cp);
  auto loaded = LoadCheckpointFile(cp.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
      << loaded.status().ToString();
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(DiskChaosTest, UnreadableJournalIsATypedError) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "permission bits do not bind root; the EACCES path "
                    "is covered by errno injection below";
  }
  ResetTree();
  fs::path journal = fs::path(root_) / kJournalName;
  { std::ofstream(journal) << "FSXJ1\n"; }
  fs::permissions(journal, fs::perms::none);
  auto contents = ReadJournal(journal);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kFailedPrecondition);
  fs::permissions(journal, fs::perms::owner_all);
}
#endif

TEST_F(DiskChaosTest, InjectedEaccesAndErofsSurfaceAsFailedPrecondition) {
  for (int err : {EACCES, EROFS}) {
    ResetTree();
    Status failure = Status::Ok();
    DiskFaultRun run = RunWithDiskFaultAt(
        3, err,
        [&] {
          auto r = RunApply();
          failure = r.status();
          return r.ok();
        },
        "", /*sticky=*/true);
    ASSERT_GT(run.faults_injected, 0u);
    ASSERT_FALSE(run.fn_ok);
    EXPECT_EQ(failure.code(), StatusCode::kFailedPrecondition)
        << "errno " << err << ": " << failure.ToString();
    ExpectOldOrNew("read-only disk");
    ExpectConverges("read-only disk");
  }
}

}  // namespace
}  // namespace fsx::store
