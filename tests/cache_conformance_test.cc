// Pins the cache determinism contract: server-side caching is pure
// memoization, so a session running against a cold cache, a warm cache,
// or no cache at all must produce wire traffic — every message, byte for
// byte, in order — and results identical to the uncached run. Covers
// every cached server path: the single-file session protocol across the
// full corpus, the batched and tree collection drivers, and the
// broadcast hash-cast path. Labeled `cache` and `conformance`.
#include <gtest/gtest.h>

#include <vector>

#include "fsync/cache/sync_cache.h"
#include "fsync/core/broadcast.h"
#include "fsync/core/collection.h"
#include "fsync/core/session.h"
#include "fsync/testing/corpus.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

void ExpectSameTranscript(const SimulatedChannel& a,
                          const SimulatedChannel& b) {
  const auto& ta = a.transcript();
  const auto& tb = b.transcript();
  ASSERT_EQ(ta.size(), tb.size()) << "message count diverged";
  for (size_t m = 0; m < ta.size(); ++m) {
    ASSERT_EQ(static_cast<int>(ta[m].dir), static_cast<int>(tb[m].dir))
        << "direction of message " << m;
    ASSERT_EQ(ta[m].payload, tb[m].payload)
        << "payload of message " << m << " diverged";
  }
}

TEST(CacheConformance, SessionWireBitIdenticalColdWarmUncached) {
  const uint64_t seed = SeedFromEnv(59);
  SyncConfig config;
  for (CorpusShape shape : AllCorpusShapes()) {
    CorpusPair pair = MakeCorpusPair(shape, seed);
    SCOPED_TRACE(pair.Label() + " FSX_SEED=" + std::to_string(seed));

    SimulatedChannel uncached;
    uncached.EnableTranscript();
    auto r0 = SynchronizeFile(pair.f_old, pair.f_new, config, uncached);

    cache::SyncCache cache;
    SimulatedChannel cold;
    cold.EnableTranscript();
    auto r1 =
        SynchronizeFile(pair.f_old, pair.f_new, config, cold, nullptr,
                        &cache);
    SimulatedChannel warm;
    warm.EnableTranscript();
    auto r2 =
        SynchronizeFile(pair.f_old, pair.f_new, config, warm, nullptr,
                        &cache);

    ASSERT_EQ(r0.ok(), r1.ok());
    ASSERT_EQ(r0.ok(), r2.ok());
    if (!r0.ok()) {
      continue;
    }
    EXPECT_EQ(r0->reconstructed, r1->reconstructed);
    EXPECT_EQ(r0->reconstructed, r2->reconstructed);
    EXPECT_EQ(r0->stats.total_bytes(), r1->stats.total_bytes());
    EXPECT_EQ(r0->stats.total_bytes(), r2->stats.total_bytes());
    EXPECT_EQ(r0->rounds, r2->rounds);
    EXPECT_EQ(r0->delta_bytes, r2->delta_bytes);
    EXPECT_EQ(r0->fallback, r2->fallback);
    EXPECT_EQ(r0->degradation_level, r2->degradation_level);
    ExpectSameTranscript(uncached, cold);
    ExpectSameTranscript(uncached, warm);
  }
}

TEST(CacheConformance, TightBudgetEvictionKeepsWireIdentical) {
  // A cache too small to hold one session's entries evicts mid-session;
  // the wire must not notice.
  const uint64_t seed = SeedFromEnv(61);
  SyncConfig config;
  cache::SyncCache tiny(/*max_bytes=*/1024);
  for (CorpusShape shape :
       {CorpusShape::kClusteredEdits, CorpusShape::kBlockMove}) {
    CorpusPair pair = MakeCorpusPair(shape, seed);
    SCOPED_TRACE(pair.Label());
    SimulatedChannel uncached;
    uncached.EnableTranscript();
    auto r0 = SynchronizeFile(pair.f_old, pair.f_new, config, uncached);
    SimulatedChannel cached;
    cached.EnableTranscript();
    auto r1 = SynchronizeFile(pair.f_old, pair.f_new, config, cached,
                              nullptr, &tiny);
    ASSERT_TRUE(r0.ok() && r1.ok());
    EXPECT_EQ(r0->reconstructed, r1->reconstructed);
    ExpectSameTranscript(uncached, cached);
  }
}

Collection ConformanceServer(uint64_t seed) {
  Collection server;
  server["a/clustered"] =
      MakeCorpusPair(CorpusShape::kClusteredEdits, seed).f_new;
  server["a/moved"] = MakeCorpusPair(CorpusShape::kBlockMove, seed).f_new;
  server["b/new-file"] =
      MakeCorpusPair(CorpusShape::kDispersedEdits, seed).f_new;
  server["b/small"] = ToBytes("tiny new contents\n");
  return server;
}

Collection ConformanceClient(uint64_t seed) {
  Collection client;
  client["a/clustered"] =
      MakeCorpusPair(CorpusShape::kClusteredEdits, seed).f_old;
  client["a/moved"] = MakeCorpusPair(CorpusShape::kBlockMove, seed).f_old;
  client["b/small"] = ToBytes("tiny old contents\n");
  client["b/stale-only"] = ToBytes("client-only file\n");
  return client;
}

TEST(CacheConformance, BatchedCollectionWireBitIdentical) {
  const uint64_t seed = SeedFromEnv(67);
  Collection client = ConformanceClient(seed);
  Collection server = ConformanceServer(seed);
  SyncConfig config;

  SimulatedChannel uncached;
  uncached.EnableTranscript();
  auto r0 = SyncCollectionBatched(client, server, config, uncached);
  ASSERT_TRUE(r0.ok()) << r0.status().message();

  cache::SyncCache cache;
  for (int client_no = 0; client_no < 2; ++client_no) {
    SCOPED_TRACE(client_no == 0 ? "cold" : "warm");
    SimulatedChannel cached;
    cached.EnableTranscript();
    auto r1 = SyncCollectionBatched(client, server, config, cached,
                                    nullptr, &cache);
    ASSERT_TRUE(r1.ok()) << r1.status().message();
    EXPECT_EQ(r0->reconstructed, r1->reconstructed);
    EXPECT_EQ(r0->stats.total_bytes(), r1->stats.total_bytes());
    ExpectSameTranscript(uncached, cached);
  }
  EXPECT_GT(cache.Stats().hits, 0u);
}

TEST(CacheConformance, TreeCollectionWireBitIdentical) {
  const uint64_t seed = SeedFromEnv(71);
  Collection client = ConformanceClient(seed);
  Collection server = ConformanceServer(seed);

  TreeSyncParams plain;
  SimulatedChannel uncached;
  uncached.EnableTranscript();
  auto r0 = SyncCollectionTree(client, server, plain, uncached);
  ASSERT_TRUE(r0.ok()) << r0.status().message();

  cache::SyncCache cache;
  TreeSyncParams with_cache;
  with_cache.cache = &cache;
  for (int client_no = 0; client_no < 2; ++client_no) {
    SCOPED_TRACE(client_no == 0 ? "cold" : "warm");
    SimulatedChannel cached;
    cached.EnableTranscript();
    auto r1 = SyncCollectionTree(client, server, with_cache, cached);
    ASSERT_TRUE(r1.ok()) << r1.status().message();
    EXPECT_EQ(r0->reconstructed, r1->reconstructed);
    EXPECT_EQ(r0->stats.total_bytes(), r1->stats.total_bytes());
    ExpectSameTranscript(uncached, cached);
  }
  EXPECT_GT(cache.Stats().hits, 0u);
}

TEST(CacheConformance, HashCastBytesIdenticalColdWarmUncached) {
  const uint64_t seed = SeedFromEnv(73);
  HashCastConfig config;
  for (CorpusShape shape :
       {CorpusShape::kWebPageEdit, CorpusShape::kClusteredEdits,
        CorpusShape::kEmptyOld}) {
    CorpusPair pair = MakeCorpusPair(shape, seed);
    SCOPED_TRACE(pair.Label());
    auto plain_cast = BuildHashCast(pair.f_new, config);
    ASSERT_TRUE(plain_cast.ok());

    cache::SyncCache cache;
    for (int round = 0; round < 2; ++round) {  // cold, then warm
      auto cast = BuildHashCastCached(pair.f_new, config, &cache);
      ASSERT_TRUE(cast.ok());
      EXPECT_EQ(*cast, *plain_cast);
    }

    auto map = ApplyHashCast(pair.f_old, *plain_cast);
    ASSERT_TRUE(map.ok());
    Bytes request = EncodeCastRequest(*map);
    auto plain_delta = MakeCastDelta(pair.f_new, request, config);
    ASSERT_TRUE(plain_delta.ok());
    for (int round = 0; round < 2; ++round) {
      auto delta = MakeCastDeltaCached(pair.f_new, request, config, &cache);
      ASSERT_TRUE(delta.ok());
      EXPECT_EQ(*delta, *plain_delta);
    }
  }
}

}  // namespace
}  // namespace fsx
