// Unit tests for the work-stealing pool and the parallel-for/map
// primitives: full coverage of indices, deterministic result order,
// exception propagation, nested parallelism, and clean shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "fsync/par/thread_pool.h"

namespace fsx::par {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(4, kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SingleThreadIsInlineSerial) {
  // With num_threads <= 1 the loop must run on the calling thread, in
  // order — protocols rely on this for the zero-overhead default.
  std::thread::id self = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(1, 100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelFor, ZeroAndOneElementDegenerate) {
  int calls = 0;
  ParallelFor(8, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(8, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, FirstExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ParallelFor(4, 1000,
                  [&](size_t i) {
                    if (i == 137) {
                      throw std::runtime_error("lane failure");
                    }
                  }),
      std::runtime_error);
  // The pool survives a throwing region and keeps working.
  std::atomic<int> after{0};
  ParallelFor(4, 100, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  std::vector<uint64_t> out =
      ParallelMap(4, 5000, [](size_t i) { return uint64_t{i} * i; });
  ASSERT_EQ(out.size(), 5000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], uint64_t{i} * i);
  }
}

TEST(ParallelMap, DeterministicAcrossRepeatsAndThreadCounts) {
  auto run = [](int threads) {
    return ParallelMap(threads, 2000,
                       [](size_t i) { return uint64_t{i} * 2654435761u; });
  };
  std::vector<uint64_t> serial = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST(ParallelFor, NestedParallelismDoesNotDeadlock) {
  // Outer lanes each open an inner parallel region on the same shared
  // pool; waiters help drain via RunOne, so this must complete even when
  // every worker is blocked in an outer task.
  std::atomic<int> total{0};
  ParallelFor(4, 8, [&](size_t) {
    ParallelFor(4, 50, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool must finish everything before joining
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, RunOneHelpsDrain) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  // The caller can steal work instead of sleeping on the pool.
  while (pool.RunOne()) {
  }
  while (pool.pending() > 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 10);
  EXPECT_FALSE(pool.RunOne());
}

TEST(ThreadPool, SharedPoolIsSingletonAndUsable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
  std::atomic<int> ran{0};
  std::atomic<int> want{64};
  for (int i = 0; i < 64; ++i) {
    a.Submit([&] { ran.fetch_add(1); });
  }
  while (ran.load() < want.load()) {
    a.RunOne();  // help, in case the pool has a single busy worker
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace fsx::par
