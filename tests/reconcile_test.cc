#include <gtest/gtest.h>

#include "fsync/reconcile/merkle.h"
#include "fsync/util/random.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

FileDigestMap MakeDigests(uint64_t seed, int n, const std::string& prefix) {
  Rng rng(seed);
  FileDigestMap out;
  for (int i = 0; i < n; ++i) {
    Fingerprint fp;
    Bytes r = rng.RandomBytes(16);
    std::copy(r.begin(), r.end(), fp.begin());
    out[prefix + std::to_string(i)] = fp;
  }
  return out;
}

ReconcileResult MustReconcile(const FileDigestMap& client,
                              const FileDigestMap& server,
                              const MerkleParams& params = {}) {
  SimulatedChannel channel;
  auto r = MerkleReconcile(client, server, params, channel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(*r);
}

// Reference answer computed directly.
void ExpectExact(const FileDigestMap& client, const FileDigestMap& server,
                 const ReconcileResult& r) {
  std::vector<std::string> want_stale;
  std::vector<std::string> want_extra;
  for (const auto& [name, fp] : server) {
    auto it = client.find(name);
    if (it == client.end() || it->second != fp) {
      want_stale.push_back(name);
    }
  }
  for (const auto& [name, fp] : client) {
    if (!server.contains(name)) {
      want_extra.push_back(name);
    }
  }
  EXPECT_EQ(r.stale, want_stale);
  EXPECT_EQ(r.extra, want_extra);
}

TEST(Merkle, IdenticalSetsCostOneRound) {
  FileDigestMap files = MakeDigests(1, 500, "f");
  ReconcileResult r = MustReconcile(files, files);
  EXPECT_TRUE(r.stale.empty());
  EXPECT_TRUE(r.extra.empty());
  EXPECT_EQ(r.rounds, 1);
  EXPECT_LT(r.stats.total_bytes(), 64u);
}

TEST(Merkle, SingleChangedFileFound) {
  FileDigestMap client = MakeDigests(2, 1000, "f");
  FileDigestMap server = client;
  server["f123"][0] ^= 0xFF;
  ReconcileResult r = MustReconcile(client, server);
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0], "f123");
  EXPECT_TRUE(r.extra.empty());
  // Far cheaper than exchanging 1000 fingerprints (~20 KB).
  EXPECT_LT(r.stats.total_bytes(), FullExchangeBytes(client) / 10);
}

TEST(Merkle, AddedAndRemovedFiles) {
  FileDigestMap client = MakeDigests(3, 200, "f");
  FileDigestMap server = client;
  server.erase("f7");
  server.erase("f42");
  Fingerprint fp{};
  server["brand/new"] = fp;
  ReconcileResult r = MustReconcile(client, server);
  ExpectExact(client, server, r);
}

TEST(Merkle, DisjointSets) {
  FileDigestMap client = MakeDigests(4, 50, "a");
  FileDigestMap server = MakeDigests(5, 50, "b");
  ReconcileResult r = MustReconcile(client, server);
  ExpectExact(client, server, r);
  EXPECT_EQ(r.stale.size(), 50u);
  EXPECT_EQ(r.extra.size(), 50u);
}

TEST(Merkle, EmptySides) {
  FileDigestMap files = MakeDigests(6, 20, "f");
  ReconcileResult a = MustReconcile({}, files);
  EXPECT_EQ(a.stale.size(), 20u);
  ReconcileResult b = MustReconcile(files, {});
  EXPECT_EQ(b.extra.size(), 20u);
  ReconcileResult c = MustReconcile({}, {});
  EXPECT_TRUE(c.stale.empty());
  EXPECT_TRUE(c.extra.empty());
}

TEST(Merkle, CostScalesWithChangesNotCollectionSize) {
  FileDigestMap small_client = MakeDigests(7, 100, "f");
  FileDigestMap big_client = MakeDigests(7, 10000, "f");
  FileDigestMap small_server = small_client;
  FileDigestMap big_server = big_client;
  small_server["f5"][0] ^= 1;
  big_server["f5"][0] ^= 1;
  ReconcileResult rs = MustReconcile(small_client, small_server);
  ReconcileResult rb = MustReconcile(big_client, big_server);
  // 100x the files must cost far less than 100x the bytes (log growth).
  EXPECT_LT(rb.stats.total_bytes(), rs.stats.total_bytes() * 8);
}

class MerkleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleFuzz, AlwaysExact) {
  Rng rng(GetParam());
  int n = 1 + static_cast<int>(rng.Uniform(400));
  FileDigestMap client = MakeDigests(GetParam() * 13 + 1, n, "f");
  FileDigestMap server = client;
  // Random churn.
  int changes = static_cast<int>(rng.Uniform(20));
  for (int i = 0; i < changes; ++i) {
    switch (rng.Uniform(3)) {
      case 0: {  // modify
        auto it = server.begin();
        std::advance(it, rng.Uniform(server.size()));
        it->second[rng.Uniform(16)] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
        break;
      }
      case 1: {  // delete
        if (!server.empty()) {
          auto it = server.begin();
          std::advance(it, rng.Uniform(server.size()));
          server.erase(it);
        }
        break;
      }
      default: {  // add
        Fingerprint fp;
        Bytes r = rng.RandomBytes(16);
        std::copy(r.begin(), r.end(), fp.begin());
        server["new" + std::to_string(rng.Uniform(1000))] = fp;
        break;
      }
    }
  }
  MerkleParams params;
  params.leaf_batch = 1 + static_cast<uint32_t>(rng.Uniform(8));
  params.node_hash_bytes = 4 + static_cast<uint32_t>(rng.Uniform(5));
  ReconcileResult r = MustReconcile(client, server, params);
  ExpectExact(client, server, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerkleFuzz,
                         ::testing::Range<uint64_t>(0, 25));

TEST(Merkle, DigestCollectionMatchesFingerprints) {
  Rng rng(8);
  std::map<std::string, Bytes> files;
  files["a"] = SynthSourceFile(rng, 1000);
  files["b"] = SynthSourceFile(rng, 2000);
  FileDigestMap digests = DigestCollection(files);
  EXPECT_EQ(digests.at("a"), FileFingerprint(files.at("a")));
  EXPECT_EQ(digests.at("b"), FileFingerprint(files.at("b")));
}

}  // namespace
}  // namespace fsx
