// Drives the message-level endpoints directly (the API a real-transport
// deployment would use), without SimulatedChannel.
#include <gtest/gtest.h>

#include "fsync/core/endpoint.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

struct Pumped {
  Bytes result;
  bool unchanged = false;
  bool used_fallback = false;
  int messages = 0;
};

// Pumps messages between the endpoints until the client completes.
StatusOr<Pumped> Pump(ByteSpan f_old, ByteSpan f_new,
                      const SyncConfig& config) {
  SyncClientEndpoint client(f_old, config);
  SyncServerEndpoint server(f_new, config);
  Pumped out;

  Bytes request = client.MakeRequest();
  ++out.messages;
  FSYNC_ASSIGN_OR_RETURN(Bytes server_msg, server.OnRequest(request));
  for (;;) {
    ++out.messages;
    FSYNC_ASSIGN_OR_RETURN(std::optional<Bytes> reply,
                           client.OnServerMessage(server_msg));
    if (!reply.has_value()) {
      break;
    }
    ++out.messages;
    FSYNC_ASSIGN_OR_RETURN(server_msg, server.OnClientMessage(*reply));
  }
  if (client.needs_fallback()) {
    Bytes full = server.OnFallbackRequest();
    FSYNC_RETURN_IF_ERROR(client.OnFallbackTransfer(full));
    out.used_fallback = true;
  }
  if (!client.done()) {
    return Status::Internal("client did not finish");
  }
  out.result = client.result();
  out.unchanged = client.unchanged();
  return out;
}

TEST(Endpoint, ManualPumpReconstructs) {
  Rng rng(1);
  Bytes f_old = SynthSourceFile(rng, 50000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;
  auto r = Pump(f_old, f_new, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result, f_new);
  EXPECT_FALSE(r->unchanged);
  EXPECT_GT(r->messages, 4);
}

TEST(Endpoint, UnchangedShortCircuit) {
  Rng rng(2);
  Bytes f = SynthSourceFile(rng, 10000);
  SyncConfig config;
  auto r = Pump(f, f, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->unchanged);
  EXPECT_EQ(r->result, f);
  EXPECT_EQ(r->messages, 2);  // request + unchanged reply
}

TEST(Endpoint, MessagesSurviveCopying) {
  // Messages must be self-contained byte strings: copy them through an
  // intermediate buffer (as a socket would) and verify nothing breaks.
  Rng rng(3);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;

  SyncClientEndpoint client(f_old, config);
  SyncServerEndpoint server(f_new, config);
  Bytes wire = client.MakeRequest();
  Bytes hop(wire.begin(), wire.end());  // simulated transport copy
  auto server_msg = server.OnRequest(hop);
  ASSERT_TRUE(server_msg.ok());
  Bytes current = *server_msg;
  for (;;) {
    Bytes inbound(current.begin(), current.end());
    auto reply = client.OnServerMessage(inbound);
    ASSERT_TRUE(reply.ok());
    if (!reply->has_value()) {
      break;
    }
    Bytes outbound((*reply)->begin(), (*reply)->end());
    auto next = server.OnClientMessage(outbound);
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  ASSERT_TRUE(client.done());
  EXPECT_EQ(client.result(), f_new);
}

TEST(Endpoint, GarbageRequestRejected) {
  SyncConfig config;
  Bytes f = ToBytes("server file");
  SyncServerEndpoint server(f, config);
  Bytes tiny = {1, 2, 3};  // shorter than a fingerprint
  EXPECT_FALSE(server.OnRequest(tiny).ok());
}

TEST(Endpoint, GarbageServerMessageRejected) {
  SyncConfig config;
  Bytes f = ToBytes("client file");
  SyncClientEndpoint client(f, config);
  Bytes junk;  // empty: not even the unchanged bit
  EXPECT_FALSE(client.OnServerMessage(junk).ok());
}

TEST(Endpoint, TraceAvailableAfterCompletion) {
  Rng rng(4);
  Bytes f_old = SynthSourceFile(rng, 40000);
  EditProfile ep;
  ep.num_edits = 6;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;

  SyncClientEndpoint client(f_old, config);
  SyncServerEndpoint server(f_new, config);
  auto msg = server.OnRequest(client.MakeRequest());
  ASSERT_TRUE(msg.ok());
  Bytes current = *msg;
  for (;;) {
    auto reply = client.OnServerMessage(current);
    ASSERT_TRUE(reply.ok());
    if (!reply->has_value()) {
      break;
    }
    auto next = server.OnClientMessage(**reply);
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  EXPECT_FALSE(client.trace().empty());
  EXPECT_EQ(client.rounds_executed(), server.rounds_executed());
  EXPECT_GT(server.delta_payload_bytes(), 0u);
}

}  // namespace
}  // namespace fsx
