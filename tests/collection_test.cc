#include <gtest/gtest.h>

#include "fsync/core/collection.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

struct Snapshots {
  Collection old_snap;
  Collection new_snap;
};

Snapshots MakeSnapshots(uint64_t seed, int files) {
  Rng rng(seed);
  Snapshots s;
  for (int i = 0; i < files; ++i) {
    std::string name = "f" + std::to_string(i);
    Bytes content = SynthSourceFile(rng, 2000 + rng.Uniform(20000));
    s.old_snap[name] = content;
    if (i % 3 == 0) {
      s.new_snap[name] = content;  // unchanged
    } else {
      EditProfile ep;
      ep.num_edits = static_cast<int>(rng.UniformInt(1, 10));
      s.new_snap[name] = ApplyEdits(content, ep, rng);
    }
  }
  return s;
}

TEST(Collection, SyncReconstructsEveryFile) {
  Snapshots s = MakeSnapshots(1, 12);
  SyncConfig config;
  auto r = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, s.new_snap);
  EXPECT_EQ(r->files_total, s.new_snap.size());
  EXPECT_EQ(r->files_unchanged, 4u);
}

TEST(Collection, UnchangedFilesCostOnlyFingerprints) {
  Snapshots s;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    Bytes content = SynthSourceFile(rng, 10000);
    s.old_snap["f" + std::to_string(i)] = content;
    s.new_snap["f" + std::to_string(i)] = content;
  }
  SyncConfig config;
  auto r = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files_unchanged, 10u);
  // Fingerprint exchange only: ~(16 + name) per file.
  EXPECT_LT(r->stats.total_bytes(), 10 * 64u);
}

TEST(Collection, NewFilesAreTransferred) {
  Snapshots s = MakeSnapshots(3, 5);
  Rng rng(4);
  s.new_snap["brand_new"] = SynthSourceFile(rng, 15000);
  SyncConfig config;
  auto r = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files_new, 1u);
  EXPECT_EQ(r->reconstructed.at("brand_new"), s.new_snap.at("brand_new"));
}

TEST(Collection, DeletedFilesDisappear) {
  Snapshots s = MakeSnapshots(5, 5);
  s.new_snap.erase(s.new_snap.begin());
  SyncConfig config;
  auto r = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reconstructed, s.new_snap);
}

TEST(Collection, RsyncBaselineReconstructs) {
  Snapshots s = MakeSnapshots(6, 10);
  RsyncParams params;
  auto r = SyncCollectionRsync(s.old_snap, s.new_snap, params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, s.new_snap);
}

TEST(Collection, CdcBaselineReconstructs) {
  Snapshots s = MakeSnapshots(9, 10);
  CdcSyncParams params;
  auto r = SyncCollectionCdc(s.old_snap, s.new_snap, params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, s.new_snap);
  // Single-roundtrip family: chunk offer + have-bitmap + data.
  EXPECT_LT(r->stats.roundtrips, 6u);
}

TEST(Collection, CostOrderingMatchesPaper) {
  // full > gzip > rsync > fsync-protocol > delta lower bound.
  Snapshots s = MakeSnapshots(7, 16);
  SyncConfig config;
  RsyncParams rsync_params;

  uint64_t full = CollectionFullTransferBytes(s.old_snap, s.new_snap);
  uint64_t gz = CollectionCompressedTransferBytes(s.old_snap, s.new_snap);
  auto ours = SyncCollection(s.old_snap, s.new_snap, config);
  auto rs = SyncCollectionRsync(s.old_snap, s.new_snap, rsync_params);
  auto delta = CollectionDeltaBytes(s.old_snap, s.new_snap, DeltaCodec::kZd);
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(delta.ok());

  EXPECT_LT(gz, full);
  EXPECT_LT(rs->stats.total_bytes(), gz);
  EXPECT_LT(ours->stats.total_bytes(), rs->stats.total_bytes());
  EXPECT_LE(*delta, ours->stats.total_bytes());
}

TEST(Collection, RoundtripsAreBatchedNotSummed) {
  Snapshots s = MakeSnapshots(8, 20);
  SyncConfig config;
  auto r = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(r.ok());
  // Roundtrips must scale with protocol depth, not with file count.
  EXPECT_LT(r->stats.roundtrips, 30u);
}

TEST(CollectionBatched, ReconstructsAndSharesRoundtrips) {
  Snapshots s = MakeSnapshots(10, 15);
  SyncConfig config;
  SimulatedChannel channel;
  auto r = SyncCollectionBatched(s.old_snap, s.new_snap, config, channel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, s.new_snap);
  // True multiplexing: total roundtrips ~= deepest single file's session
  // plus the announce exchange, far below #files * rounds.
  EXPECT_LT(r->stats.roundtrips, 30u);
  // And it should be comparable in bytes to the per-file accounting.
  auto per_file = SyncCollection(s.old_snap, s.new_snap, config);
  ASSERT_TRUE(per_file.ok());
  EXPECT_LT(r->stats.total_bytes(),
            per_file->stats.total_bytes() * 3 / 2 + 4096);
}

TEST(CollectionBatched, HandlesNewDeletedAndUnchanged) {
  Snapshots s = MakeSnapshots(11, 8);
  Rng rng(12);
  s.new_snap.erase(s.new_snap.begin());
  s.new_snap["added_file"] = SynthSourceFile(rng, 12000);
  SyncConfig config;
  SimulatedChannel channel;
  auto r = SyncCollectionBatched(s.old_snap, s.new_snap, config, channel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, s.new_snap);
  EXPECT_EQ(r->files_new, 1u);
  EXPECT_GT(r->files_unchanged, 0u);
}

TEST(CollectionBatched, EmptyCollections) {
  SyncConfig config;
  SimulatedChannel channel;
  auto r = SyncCollectionBatched({}, {}, config, channel);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reconstructed.empty());
}

TEST(CollectionBatched, AllUnchangedCostsOnlyAnnounce) {
  Snapshots s;
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    Bytes content = SynthSourceFile(rng, 20000);
    s.old_snap["f" + std::to_string(i)] = content;
    s.new_snap["f" + std::to_string(i)] = content;
  }
  SyncConfig config;
  SimulatedChannel channel;
  auto r = SyncCollectionBatched(s.old_snap, s.new_snap, config, channel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files_unchanged, 10u);
  EXPECT_EQ(r->stats.roundtrips, 1u);  // announce/verdict only
  EXPECT_LT(r->stats.total_bytes(), 10 * 64u);
}

TEST(Collection, EmptyCollections) {
  SyncConfig config;
  auto r = SyncCollection({}, {}, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reconstructed.empty());
}

}  // namespace
}  // namespace fsx
