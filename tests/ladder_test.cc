// Graceful-degradation ladder tests. Deliberately weak verification
// hashes let wrong blocks into the map, so the delta phase reconstructs
// a file that fails the fingerprint check — exactly the failure the
// ladder exists for. Rung 2 (region repair) must fix it by fetching
// only the bad regions' literals; with repair disabled, rung 3 (full
// transfer) must. In every case the result is byte-exact: degradation
// changes cost, never correctness.
#include <gtest/gtest.h>

#include "fsync/core/session.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/testing/corpus.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

// Verification weak enough that false matches survive to the delta
// phase (a `bits`-bit hash accepts a wrong candidate with probability
// 2^-bits). Small `bits` floods the map with errors (driving the ladder
// to the full-transfer rung); moderate `bits` admits just a few, the
// region-repair sweet spot. Fine repair regions keep the bad fraction
// under the full-transfer threshold.
SyncConfig WeakVerifyConfig(int bits) {
  SyncConfig config;
  config.verify.verify_bits = bits;
  config.verify.group_size = 1;
  config.verify.max_batches = 1;
  config.verify.continuation_group_size = 1;
  config.verify.adaptive_groups = false;
  config.global_extra_bits = 0;
  config.continuation_bits = 2;
  config.repair.region_size = 1024;
  return config;
}

struct LadderTally {
  int runs = 0;
  int level1 = 0;  // region repair finished the session
  int level2 = 0;  // full transfer finished the session
  uint64_t repaired_regions = 0;
};

void SweepSeeds(const SyncConfig& config, int seeds,
                bool expect_full_when_degraded, LadderTally& tally) {
  for (int seed = 0; seed < seeds; ++seed) {
    CorpusPair pair =
        MakeCorpusPair(CorpusShape::kDispersedEdits, 9000 + seed);
    SimulatedChannel channel;
    obs::SyncObserver obs;
    auto r = SynchronizeFile(pair.f_old, pair.f_new, config, channel, &obs);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    // The ladder may change the cost, never the bytes.
    EXPECT_EQ(r->reconstructed, pair.f_new) << "seed " << seed;
    ++tally.runs;
    if (r->degradation_level == 1) {
      ++tally.level1;
      EXPECT_GT(r->repaired_regions, 0u) << "seed " << seed;
      EXPECT_FALSE(r->fallback) << "seed " << seed;
      EXPECT_EQ(obs.event_count(obs::Event::kRepairRegion),
                r->repaired_regions)
          << "seed " << seed;
      tally.repaired_regions += r->repaired_regions;
    } else if (r->degradation_level == 2) {
      ++tally.level2;
      EXPECT_TRUE(r->fallback) << "seed " << seed;
      EXPECT_GE(obs.event_count(obs::Event::kFullFallback), 1u)
          << "seed " << seed;
    } else {
      EXPECT_EQ(r->degradation_level, 0) << "seed " << seed;
      EXPECT_EQ(r->repaired_regions, 0u) << "seed " << seed;
    }
    if (expect_full_when_degraded) {
      EXPECT_NE(r->degradation_level, 1)
          << "seed " << seed << ": repaired with repair disabled";
    }
  }
}

TEST(Ladder, WeakVerificationIsRepairedRegionally) {
  LadderTally tally;
  for (int bits = 1; bits <= 5; ++bits) {
    SweepSeeds(WeakVerifyConfig(bits), 8,
               /*expect_full_when_degraded=*/false, tally);
  }
  // The sweep must actually exercise the ladder, and rung 2 must catch
  // at least some sessions before the full-transfer rung.
  EXPECT_GT(tally.level1 + tally.level2, 0)
      << "weak verification never corrupted a map; the sweep is inert";
  EXPECT_GT(tally.level1, 0) << "region repair never engaged";
  EXPECT_GT(tally.repaired_regions, 0u);
}

TEST(Ladder, RepairDisabledFallsBackToFullTransfer) {
  LadderTally tally;
  for (int bits = 1; bits <= 5; ++bits) {
    SyncConfig config = WeakVerifyConfig(bits);
    config.repair.enabled = false;
    SweepSeeds(config, 8, /*expect_full_when_degraded=*/true, tally);
  }
  EXPECT_GT(tally.level2, 0)
      << "with repair disabled, degraded sessions must reach rung 3";
  EXPECT_EQ(tally.level1, 0);
}

TEST(Ladder, CleanSessionStaysOnLevelZero) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, 4);
  SyncConfig config;  // default (strong) verification
  SimulatedChannel channel;
  obs::SyncObserver obs;
  auto r = SynchronizeFile(pair.f_old, pair.f_new, config, channel, &obs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, pair.f_new);
  EXPECT_EQ(r->degradation_level, 0);
  EXPECT_EQ(r->repaired_regions, 0u);
  EXPECT_FALSE(r->fallback);
  EXPECT_EQ(obs.event_count(obs::Event::kRepairRegion), 0u);
  EXPECT_EQ(obs.event_count(obs::Event::kFullFallback), 0u);
}

}  // namespace
}  // namespace fsx
