#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "fsync/util/bit_io.h"
#include "fsync/util/hex.h"
#include "fsync/util/mapped_file.h"
#include "fsync/util/random.h"
#include "fsync/util/status.h"

namespace fsx {
namespace {

// --- Status / StatusOr ------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::DataLoss("truncated");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: truncated");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return x;
}

StatusOr<int> DoubleIt(int x) {
  FSYNC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOr, ValuePath) {
  auto r = DoubleIt(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusOr, ErrorPropagates) {
  auto r = DoubleIt(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- BitWriter / BitReader ---------------------------------------------

TEST(BitIo, SingleBits) {
  BitWriter w;
  for (int i = 0; i < 12; ++i) {
    w.WriteBit(i % 3 == 0);
  }
  Bytes buf = w.Finish();
  BitReader r(buf);
  for (int i = 0; i < 12; ++i) {
    auto b = r.ReadBit();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, i % 3 == 0) << i;
  }
}

TEST(BitIo, MixedWidthRoundTrip) {
  BitWriter w;
  w.WriteBits(0x5, 3);
  w.WriteBits(0xABCD, 16);
  w.WriteBits(1, 1);
  w.WriteBits(0x123456789ULL, 37);
  w.WriteBits(0xFFFFFFFFFFFFFFFFULL, 64);
  Bytes buf = w.Finish();

  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(3).value(), 0x5u);
  EXPECT_EQ(r.ReadBits(16).value(), 0xABCDu);
  EXPECT_EQ(r.ReadBits(1).value(), 1u);
  EXPECT_EQ(r.ReadBits(37).value(), 0x123456789ULL);
  EXPECT_EQ(r.ReadBits(64).value(), 0xFFFFFFFFFFFFFFFFULL);
}

TEST(BitIo, WriteBitsMasksHighBits) {
  BitWriter w;
  w.WriteBits(0xFF, 4);  // only low 4 bits should land
  w.WriteBits(0, 4);
  Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(8).value(), 0x0Fu);
}

TEST(BitIo, VarintRoundTrip) {
  BitWriter w;
  const uint64_t values[] = {0,    1,      127,        128,
                             300,  16383,  16384,      1ULL << 32,
                             ~0ULL};
  for (uint64_t v : values) {
    w.WriteVarint(v);
  }
  Bytes buf = w.Finish();
  BitReader r(buf);
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(BitIo, VarintUnaligned) {
  BitWriter w;
  w.WriteBits(0x3, 2);
  w.WriteVarint(123456);
  Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(2).value(), 0x3u);
  EXPECT_EQ(r.ReadVarint().value(), 123456u);
}

TEST(BitIo, BytesAndAlignment) {
  BitWriter w;
  w.WriteBit(true);
  w.AlignToByte();
  Bytes payload = {1, 2, 3, 250};
  w.WriteBytes(payload);
  Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_TRUE(r.ReadBit().value());
  r.AlignToByte();
  EXPECT_EQ(r.ReadBytes(4).value(), payload);
}

TEST(BitIo, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(0xAA, 8);
  Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_TRUE(r.ReadBits(8).ok());
  EXPECT_FALSE(r.ReadBits(1).ok());
  EXPECT_EQ(r.ReadBits(1).status().code(), StatusCode::kOutOfRange);
}

TEST(BitIo, BitCountTracksExactly) {
  BitWriter w;
  w.WriteBits(1, 5);
  w.WriteBits(2, 11);
  EXPECT_EQ(w.bit_count(), 16u);
}

// --- Rng ---------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, UniformWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SkewedSizeBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.SkewedSize(16, 4096);
    EXPECT_GE(v, 16u);
    EXPECT_LE(v, 4096u);
  }
}

TEST(Rng, RandomBytesLengthAndVariety) {
  Rng rng(9);
  Bytes b = rng.RandomBytes(4096);
  EXPECT_EQ(b.size(), 4096u);
  int counts[256] = {};
  for (uint8_t v : b) {
    ++counts[v];
  }
  int nonzero = 0;
  for (int c : counts) {
    nonzero += c > 0;
  }
  EXPECT_GT(nonzero, 200);
}

// --- Hex ---------------------------------------------------------------

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  EXPECT_EQ(HexDecode(hex), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_TRUE(HexDecode("abc").empty());   // odd length
  EXPECT_TRUE(HexDecode("zz").empty());    // bad digit
  EXPECT_TRUE(HexDecode("").empty());
}

// --- MappedFile / ReadWholeFile ---------------------------------------

class TempFile {
 public:
  explicit TempFile(ByteSpan content) {
    path_ = (std::filesystem::temp_directory_path() /
             ("fsx_mapped_file_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::to_string(counter_++)))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(MappedFile, SpanMatchesFileContent) {
  Bytes content = Rng(77).RandomBytes(64 * 1024 + 13);
  TempFile file(content);
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->size(), content.size());
  EXPECT_TRUE(std::equal(content.begin(), content.end(),
                         mapped->span().begin()));
}

TEST(MappedFile, EmptyFileYieldsEmptySpan) {
  TempFile file{ByteSpan()};
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->size(), 0u);
  // Zero-length mmap is invalid, so the empty file must have taken the
  // owned-buffer fallback — the API contract hides which path ran.
  EXPECT_FALSE(mapped->is_mapped());
}

TEST(MappedFile, MissingFileIsNotFound) {
  auto mapped = MappedFile::Open("/nonexistent/fsx/mapped/file");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ReadWholeFile("/nonexistent/fsx/mapped/file").ok());
}

TEST(MappedFile, MoveTransfersOwnership) {
  Bytes content = Rng(78).RandomBytes(4096);
  TempFile file(content);
  auto mapped = MappedFile::Open(file.path());
  ASSERT_TRUE(mapped.ok());
  MappedFile moved = std::move(mapped).value();
  MappedFile target;
  target = std::move(moved);
  ASSERT_EQ(target.size(), content.size());
  EXPECT_TRUE(std::equal(content.begin(), content.end(),
                         target.span().begin()));
  EXPECT_EQ(moved.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(MappedFile, ReadWholeFileMatchesMapping) {
  Bytes content = Rng(79).RandomBytes(12345);
  TempFile file(content);
  auto owned = ReadWholeFile(file.path());
  ASSERT_TRUE(owned.ok()) << owned.status().ToString();
  EXPECT_EQ(*owned, content);
}

}  // namespace
}  // namespace fsx
