// Reliable-transport unit tests: record framing (CRC32C detection of
// short frames, bit flips, unknown types) and the ReliableChannel ARQ
// machinery (in-order delivery under seeded faults, deterministic
// exponential backoff on the SimClock, bounded retries surfacing
// Status::Unavailable, duplicate suppression, observer reattribution).
#include <gtest/gtest.h>

#include <string>

#include "fsync/net/channel.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/testing/faults.h"
#include "fsync/transport/record.h"
#include "fsync/transport/reliable.h"
#include "fsync/util/random.h"

namespace fsx::transport {
namespace {

using Direction = SimulatedChannel::Direction;
using FaultAction = SimulatedChannel::FaultAction;

constexpr Direction kUp = Direction::kClientToServer;
constexpr Direction kDown = Direction::kServerToClient;

Bytes Msg(const std::string& s) { return ToBytes(s); }

// --- Record codec ----------------------------------------------------

TEST(Record, RoundTrips) {
  Bytes payload = Msg("the protocol message");
  Bytes frame = EncodeRecord(kRecordTypeData, 7, 3,
                             ByteSpan(payload.data(), payload.size()));
  EXPECT_EQ(frame.size(), payload.size() + kRecordOverheadBytes);

  auto rec = DecodeRecord(ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->type, kRecordTypeData);
  EXPECT_EQ(rec->seq, 7u);
  EXPECT_EQ(rec->ack, 3u);
  EXPECT_EQ(rec->payload, payload);
}

TEST(Record, RoundTripsEmptyPayload) {
  Bytes frame = EncodeRecord(kRecordTypeData, 0xFFFFFFFFu, 0, ByteSpan());
  EXPECT_EQ(frame.size(), kRecordOverheadBytes);
  auto rec = DecodeRecord(ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->seq, 0xFFFFFFFFu);
  EXPECT_TRUE(rec->payload.empty());
}

TEST(Record, RejectsShortFrames) {
  Bytes frame = EncodeRecord(kRecordTypeData, 1, 2, Msg("x"));
  for (size_t n = 0; n < kRecordOverheadBytes; ++n) {
    auto rec = DecodeRecord(ByteSpan(frame.data(), n));
    ASSERT_FALSE(rec.ok()) << "accepted a " << n << "-byte frame";
    EXPECT_EQ(rec.status().code(), StatusCode::kDataLoss);
  }
}

TEST(Record, RejectsEveryBitFlip) {
  Bytes payload = Msg("integrity");
  Bytes frame = EncodeRecord(kRecordTypeData, 9, 4,
                             ByteSpan(payload.data(), payload.size()));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = frame;
      bad[byte] ^= static_cast<uint8_t>(1u << bit);
      auto rec = DecodeRecord(ByteSpan(bad.data(), bad.size()));
      EXPECT_FALSE(rec.ok())
          << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(Record, RejectsUnknownType) {
  Bytes frame = EncodeRecord(0x5A, 1, 1, Msg("future"));
  auto rec = DecodeRecord(ByteSpan(frame.data(), frame.size()));
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kDataLoss);
}

// --- ReliableChannel, clean link -------------------------------------

TEST(ReliableChannel, PassesMessagesThroughCleanly) {
  SimulatedChannel inner;
  ReliableChannel channel(inner);
  for (int i = 0; i < 10; ++i) {
    Bytes up = Msg("up" + std::to_string(i));
    Bytes down = Msg("down" + std::to_string(i));
    channel.Send(kUp, up);
    channel.Send(kDown, down);
    auto got_up = channel.Receive(kUp);
    auto got_down = channel.Receive(kDown);
    ASSERT_TRUE(got_up.ok() && got_down.ok());
    EXPECT_EQ(*got_up, up);
    EXPECT_EQ(*got_down, down);
  }
  EXPECT_EQ(channel.counters().records_sent, 20u);
  EXPECT_EQ(channel.counters().delivered, 20u);
  EXPECT_EQ(channel.counters().retransmits, 0u);
  EXPECT_EQ(channel.counters().timeouts, 0u);
  EXPECT_EQ(channel.clock().now_us(), 0u);
  // stats() is the wire truth of the inner channel: 13 bytes of record
  // overhead per message on top of the payloads.
  EXPECT_GT(channel.stats().total_bytes(), 20 * kRecordOverheadBytes);
  EXPECT_EQ(&channel.inner(), &inner);
}

TEST(ReliableChannel, ReceiveWithNothingSentKeepsChannelError) {
  SimulatedChannel inner;
  ReliableChannel channel(inner);
  auto got = channel.Receive(kUp);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

// --- ReliableChannel under faults ------------------------------------

TEST(ReliableChannel, RecoversFromDroppedRecords) {
  SimulatedChannel inner;
  FaultSchedule schedule;
  schedule.name = "drop-half";
  schedule.seed = 1234;
  schedule.drop[0] = schedule.drop[1] = 0.5;
  ArmSchedule(inner, schedule);

  ReliableParams params;
  params.initial_timeout_us = 1000;
  // Half the records vanish: a 10-attempt budget has a realistic chance
  // of an 11-drop streak somewhere in 100 messages, so give recovery
  // headroom — the test targets delivery order, not the retry bound.
  params.max_attempts = 30;
  ReliableChannel channel(inner, params);
  for (int i = 0; i < 50; ++i) {
    Bytes up = Msg("u" + std::to_string(i));
    Bytes down = Msg("d" + std::to_string(i));
    channel.Send(kUp, up);
    channel.Send(kDown, down);
    auto got_up = channel.Receive(kUp);
    auto got_down = channel.Receive(kDown);
    ASSERT_TRUE(got_up.ok()) << i << ": " << got_up.status().ToString();
    ASSERT_TRUE(got_down.ok()) << i << ": " << got_down.status().ToString();
    EXPECT_EQ(*got_up, up) << i;
    EXPECT_EQ(*got_down, down) << i;
  }
  EXPECT_EQ(channel.counters().delivered, 100u);
  EXPECT_GT(channel.counters().retransmits, 0u);
  EXPECT_GT(channel.counters().timeouts, 0u);
  EXPECT_GT(channel.clock().now_us(), 0u);  // recovery took virtual time
}

TEST(ReliableChannel, DeliversInOrderUnderMixedChaos) {
  SimulatedChannel inner;
  FaultSchedule schedule;
  schedule.name = "mix";
  schedule.seed = 99;
  for (int d = 0; d < 2; ++d) {
    schedule.drop[d] = 0.15;
    schedule.duplicate[d] = 0.15;
    schedule.reorder[d] = 0.15;
    schedule.corrupt[d] = 0.15;
  }
  ArmSchedule(inner, schedule);

  ReliableParams params;
  params.initial_timeout_us = 1000;
  ReliableChannel channel(inner, params);
  // Bursts stress the reorder buffer: several records in flight at once.
  int next = 0;
  while (next < 90) {
    for (int k = 0; k < 3; ++k) {
      channel.Send(kUp, Msg("m" + std::to_string(next + k)));
    }
    for (int k = 0; k < 3; ++k) {
      auto got = channel.Receive(kUp);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, Msg("m" + std::to_string(next + k)));
    }
    next += 3;
  }
  EXPECT_FALSE(channel.LogicalPending(kUp));
  const TransportCounters& c = channel.counters();
  EXPECT_EQ(c.delivered, 90u);
  // With 15% rates over 90+ records every fault family fires.
  EXPECT_GT(c.retransmits, 0u);
  EXPECT_GT(c.corrupt_dropped, 0u);
  EXPECT_GT(c.duplicate_dropped, 0u);
}

TEST(ReliableChannel, SuppressesDuplicatesExactly) {
  SimulatedChannel inner;
  inner.SetFault([](Direction, ByteSpan) { return FaultAction::kDuplicate; });
  ReliableChannel channel(inner);
  for (int i = 0; i < 8; ++i) {
    channel.Send(kUp, Msg("dup" + std::to_string(i)));
    auto got = channel.Receive(kUp);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, Msg("dup" + std::to_string(i)));
  }
  EXPECT_FALSE(channel.LogicalPending(kUp));
  EXPECT_EQ(channel.counters().delivered, 8u);
  EXPECT_EQ(channel.counters().duplicate_dropped, 8u);
}

TEST(ReliableChannel, ExhaustsRetriesIntoUnavailable) {
  SimulatedChannel inner;
  inner.SetFault([](Direction, ByteSpan) { return FaultAction::kDrop; });
  ReliableParams params;
  params.max_attempts = 4;
  params.initial_timeout_us = 50'000;
  params.max_timeout_us = 5'000'000;
  SimClock clock;
  ReliableChannel channel(inner, params, &clock);

  channel.Send(kUp, Msg("into the void"));
  auto got = channel.Receive(kUp);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(channel.counters().timeouts, 4u);
  EXPECT_EQ(channel.counters().retransmits, 4u);
  // Exponential backoff: 50ms + 100ms + 200ms + 400ms of virtual time.
  EXPECT_EQ(clock.now_us(), 750'000u);
}

TEST(ReliableChannel, BackoffIsCapped) {
  SimulatedChannel inner;
  inner.SetFault([](Direction, ByteSpan) { return FaultAction::kDrop; });
  ReliableParams params;
  params.max_attempts = 5;
  params.initial_timeout_us = 1000;
  params.max_timeout_us = 2000;
  SimClock clock;
  ReliableChannel channel(inner, params, &clock);

  channel.Send(kDown, Msg("x"));
  auto got = channel.Receive(kDown);
  ASSERT_FALSE(got.ok());
  // 1000 then capped at 2000: 1000 + 2000 + 2000 + 2000 + 2000.
  EXPECT_EQ(clock.now_us(), 9000u);
}

TEST(ReliableChannel, TranscriptsSeparateLogicalFromDelivered) {
  SimulatedChannel inner;
  FaultSchedule schedule;
  schedule.name = "dropish";
  schedule.seed = 7;
  schedule.drop[0] = 0.4;
  ArmSchedule(inner, schedule);

  ReliableParams params;
  params.initial_timeout_us = 1000;
  ReliableChannel channel(inner, params);
  channel.EnableTranscript();
  for (int i = 0; i < 20; ++i) {
    channel.Send(kUp, Msg("t" + std::to_string(i)));
    ASSERT_TRUE(channel.Receive(kUp).ok());
  }
  // The logical transcript records each payload once, regardless of how
  // many times the wire had to carry it; delivery preserved the order.
  ASSERT_EQ(channel.transcript().size(), 20u);
  ASSERT_EQ(channel.delivered_transcript().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(channel.transcript()[i].payload, Msg("t" + std::to_string(i)));
    EXPECT_EQ(channel.delivered_transcript()[i].payload,
              Msg("t" + std::to_string(i)));
  }
}

// --- Observer accounting ---------------------------------------------

TEST(ReliableChannel, AttributesOverheadToTransportPhase) {
  SimulatedChannel inner;
  ReliableChannel channel(inner);
  obs::SyncObserver obs;
  channel.SetObserver(&obs);
  obs.set_phase(obs::Phase::kCandidates);

  Bytes payload = Msg("phase accounting");
  channel.Send(kUp, payload);
  ASSERT_TRUE(channel.Receive(kUp).ok());
  channel.SetObserver(nullptr);

  const uint64_t wire =
      MessageWireBytes(payload.size() + kRecordOverheadBytes);
  const uint64_t logical = MessageWireBytes(payload.size());
  // Invariant 6 survives the wrapper: phase sums equal the wire truth,
  // with the framing overhead carved out into the transport phase.
  EXPECT_EQ(obs.total_bytes(), channel.stats().total_bytes());
  EXPECT_EQ(obs.phase_bytes(obs::Phase::kTransport), wire - logical);
  EXPECT_EQ(obs.phase_bytes(obs::Phase::kCandidates), logical);
}

TEST(ReliableChannel, ChargesRetransmitsToTransportPhase) {
  SimulatedChannel inner;
  // Drop exactly the first transmission; the retransmit gets through.
  int sends = 0;
  inner.SetFault([&sends](Direction, ByteSpan) {
    return sends++ == 0 ? FaultAction::kDrop : FaultAction::kDeliver;
  });
  ReliableParams params;
  params.initial_timeout_us = 1000;
  ReliableChannel channel(inner, params);
  obs::SyncObserver obs;
  channel.SetObserver(&obs);
  obs.set_phase(obs::Phase::kDelta);

  Bytes payload = Msg("retry me");
  channel.Send(kUp, payload);
  auto got = channel.Receive(kUp);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  channel.SetObserver(nullptr);

  const uint64_t wire =
      MessageWireBytes(payload.size() + kRecordOverheadBytes);
  const uint64_t logical = MessageWireBytes(payload.size());
  EXPECT_EQ(obs.total_bytes(), channel.stats().total_bytes());
  // First copy: overhead only. Second copy: the whole record.
  EXPECT_EQ(obs.phase_bytes(obs::Phase::kTransport),
            (wire - logical) + wire);
  EXPECT_EQ(obs.phase_bytes(obs::Phase::kDelta), logical);
  EXPECT_EQ(obs.event_count(obs::Event::kRetransmit), 1u);
  EXPECT_EQ(obs.event_count(obs::Event::kTimeout), 1u);
}

}  // namespace
}  // namespace fsx::transport
