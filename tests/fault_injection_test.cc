// Adversarial conformance: every protocol is run under every fault family
// (bit flips, truncation, garbage substitution, drops, duplication,
// reordering) at varying target messages. The only acceptable outcomes
// are a non-OK Status or a byte-exact reconstruction — a run that returns
// OK with wrong bytes is silent corruption and fails the suite. Run under
// ASan/UBSan this also proves corrupted inputs never cause memory errors.
#include <gtest/gtest.h>

#include "fsync/testing/corpus.h"
#include "fsync/testing/faults.h"
#include "fsync/testing/protocols.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

// Shapes exercised under faults: a typical edit, a pure download, and an
// unchanged file (whose short-circuit path has its own messages).
const std::vector<CorpusShape>& FaultShapes() {
  static const std::vector<CorpusShape> kShapes = {
      CorpusShape::kClusteredEdits,
      CorpusShape::kEmptyOld,
      CorpusShape::kIdentical,
  };
  return kShapes;
}

class FaultInjection : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultInjection, ErrorOrExactUnderEveryFault) {
  const uint64_t base_seed = SeedFromEnv(0) * 1000003 + GetParam();
  for (CorpusShape shape : FaultShapes()) {
    CorpusPair pair = MakeCorpusPair(shape, base_seed);
    for (const ProtocolEntry& protocol : ConformanceProtocols()) {
      for (FaultKind kind : AllFaultKinds()) {
        FaultSpec spec;
        spec.kind = kind;
        // Sweep the target across the session's early messages; later
        // indices degenerate to clean runs, which is harmless.
        spec.target_message = GetParam() % 8;
        spec.seed = base_seed ^ (static_cast<uint64_t>(kind) << 32);
        SimulatedChannel channel;
        ArmFault(channel, spec);
        auto r = protocol.run(pair.f_old, pair.f_new, channel, nullptr);
        if (r.ok()) {
          EXPECT_EQ(r->reconstructed, pair.f_new)
              << "SILENT CORRUPTION: " << protocol.name << " under "
              << spec.Label() << " on " << pair.Label()
              << " (FSX_SEED base " << SeedFromEnv(0) << ")";
        }
        // A non-OK status is always acceptable under an active fault.
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjection,
                         ::testing::Range<uint64_t>(0, 16));

TEST(FaultInjection, EveryMessageOfOneSessionBitFlipped) {
  // Exhaustive single-bit-flip sweep over each message index of a typical
  // session, for every protocol: whichever message is hit, the outcome
  // contract holds.
  const uint64_t base_seed = SeedFromEnv(99);
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, base_seed);
  for (const ProtocolEntry& protocol : ConformanceProtocols()) {
    // First count the messages of a clean run.
    SimulatedChannel clean;
    uint64_t messages = 0;
    clean.SetTamper([&messages](SimulatedChannel::Direction, Bytes&) {
      ++messages;
    });
    auto clean_run = protocol.run(pair.f_old, pair.f_new, clean, nullptr);
    ASSERT_TRUE(clean_run.ok()) << protocol.name;
    ASSERT_GT(messages, 0u) << protocol.name;

    for (uint64_t target = 0; target < messages; ++target) {
      FaultSpec spec;
      spec.kind = FaultKind::kBitFlip;
      spec.target_message = target;
      spec.seed = base_seed + target;
      SimulatedChannel channel;
      ArmFault(channel, spec);
      auto r = protocol.run(pair.f_old, pair.f_new, channel, nullptr);
      if (r.ok()) {
        EXPECT_EQ(r->reconstructed, pair.f_new)
            << "SILENT CORRUPTION: " << protocol.name << " under "
            << spec.Label() << " (FSX_SEED " << base_seed << ")";
      }
    }
  }
}

TEST(FaultInjection, TamperEveryMessageStillNoSilentCorruption) {
  // Worst case: every single message is bit-flipped. Nothing useful can
  // complete, but nothing may lie or crash either.
  const uint64_t base_seed = SeedFromEnv(7);
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, base_seed);
  for (const ProtocolEntry& protocol : ConformanceProtocols()) {
    Rng rng(base_seed);
    SimulatedChannel channel;
    channel.SetTamper([&rng](SimulatedChannel::Direction, Bytes& msg) {
      if (!msg.empty()) {
        uint64_t bit = rng.Uniform(msg.size() * 8);
        msg[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    });
    auto r = protocol.run(pair.f_old, pair.f_new, channel, nullptr);
    if (r.ok()) {
      EXPECT_EQ(r->reconstructed, pair.f_new)
          << "SILENT CORRUPTION: " << protocol.name
          << " with every message tampered (FSX_SEED " << base_seed << ")";
    }
  }
}

}  // namespace
}  // namespace fsx
