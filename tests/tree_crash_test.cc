// Crash and chaos coverage for tree-level sync (CTest labels `crash`,
// `tree`). The kill-point sweep forks the rename-adopt apply —
// including an a<->b content swap, the hardest adoption shape — and
// _exit()s at every fsync/rename/journal-append boundary, then asserts
// the recovery contract: every file bit-exactly old or new, no debris,
// and a fresh plan computed from the surviving disk state converges.
// The chaos half runs both collection drivers over a ReliableChannel
// whose inner channel injects the seeded Bernoulli fault schedules and
// pins bit-exact reconstruction plus logical-stream determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fsync/core/collection.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/testing/faults.h"
#include "fsync/testing/tree_corpus.h"
#include "fsync/testing/tree_protocols.h"
#include "fsync/transport/reliable.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

using Direction = SimulatedChannel::Direction;

std::string Replay(uint64_t seed) {
  return "replay with FSX_SEED=" + std::to_string(seed);
}

// Fast virtual-time retransmission for tests (recovery behaviour is
// identical, only the simulated backoff delays shrink).
transport::ReliableParams TestParams() {
  transport::ReliableParams params;
  params.initial_timeout_us = 1000;
  return params;
}

// ---------------------------------------------------------------------------
// Chaos: tree sync over a faulty transport
// ---------------------------------------------------------------------------

TEST(TreeChaos, AllProtocolsAllSchedulesBitExact) {
  const uint64_t base_seed = SeedFromEnv(6011);
  const std::vector<TreeShape> shapes = {TreeShape::kPureRename,
                                         TreeShape::kMixedChurn};
  for (const TreeProtocolEntry& protocol : TreeConformanceProtocols()) {
    for (const FaultSchedule& schedule : ChaosSchedules(base_seed)) {
      for (TreeShape shape : shapes) {
        TreeCorpusPair pair = MakeTreeCorpusPair(shape, base_seed ^ 0x7EA);
        SCOPED_TRACE(protocol.name + " / " + schedule.Label() + " / " +
                     pair.Label() + " — " + Replay(base_seed));
        SimulatedChannel inner;
        ArmSchedule(inner, schedule);
        transport::ReliableChannel channel(inner, TestParams());
        auto r = protocol.run(pair.old_tree, pair.new_tree, channel, nullptr);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(r->reconstructed, pair.new_tree);
        EXPECT_FALSE(channel.LogicalPending(Direction::kClientToServer));
        EXPECT_FALSE(channel.LogicalPending(Direction::kServerToClient));
      }
    }
  }
}

TEST(TreeChaos, DeliveredStreamIsIndependentOfFaultSchedule) {
  const uint64_t base_seed = SeedFromEnv(6012);
  TreeCorpusPair pair =
      MakeTreeCorpusPair(TreeShape::kMixedChurn, base_seed ^ 0xFACE);
  for (const TreeProtocolEntry& protocol : TreeConformanceProtocols()) {
    SCOPED_TRACE(protocol.name + " — " + Replay(base_seed));
    SimulatedChannel clean_inner;
    transport::ReliableChannel clean(clean_inner, TestParams());
    clean.EnableTranscript();
    auto clean_r = protocol.run(pair.old_tree, pair.new_tree, clean, nullptr);
    ASSERT_TRUE(clean_r.ok()) << clean_r.status().ToString();

    FaultSchedule schedule;
    schedule.name = "mix";
    schedule.seed = base_seed ^ 0x5EED;
    for (int d = 0; d < 2; ++d) {
      schedule.drop[d] = 0.15;
      schedule.duplicate[d] = 0.10;
      schedule.reorder[d] = 0.10;
      schedule.corrupt[d] = 0.15;
    }
    SimulatedChannel faulty_inner;
    ArmSchedule(faulty_inner, schedule);
    transport::ReliableChannel faulty(faulty_inner, TestParams());
    faulty.EnableTranscript();
    auto faulty_r =
        protocol.run(pair.old_tree, pair.new_tree, faulty, nullptr);
    ASSERT_TRUE(faulty_r.ok()) << faulty_r.status().ToString();

    EXPECT_EQ(faulty_r->reconstructed, clean_r->reconstructed);
    const auto& sent_a = clean.transcript();
    const auto& sent_b = faulty.transcript();
    ASSERT_EQ(sent_a.size(), sent_b.size());
    for (size_t i = 0; i < sent_a.size(); ++i) {
      ASSERT_EQ(sent_a[i].dir, sent_b[i].dir) << "message " << i;
      ASSERT_EQ(sent_a[i].payload, sent_b[i].payload) << "message " << i;
    }
    EXPECT_GE(faulty.stats().total_bytes(), clean.stats().total_bytes());
  }
}

}  // namespace
}  // namespace fsx

// ---------------------------------------------------------------------------
// Kill-point sweep over the rename-adopt apply (POSIX: the harness forks)
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

#include <filesystem>

#include "fsync/store/apply.h"
#include "fsync/store/fsstore.h"
#include "fsync/testing/crash.h"

namespace fsx::store {
namespace {

namespace fs = std::filesystem;
using fsx::testing::CrashRunResult;
using fsx::testing::RunWithCrashAt;

/// The old tree: a swap pair, a plain rename source, an edit target, a
/// deletion target, and a bystander.
Collection AdoptOldTree() {
  Collection c;
  c["keep.txt"] = ToBytes("untouched bystander file");
  c["a.bin"] = ToBytes("content ALPHA lives at a.bin before the sync");
  c["b.bin"] = ToBytes("content BETA lives at b.bin before the sync");
  c["old/name.txt"] = ToBytes("renamed wholesale; bytes never change");
  c["edit.txt"] = ToBytes("old edit.txt content");
  c["doomed.txt"] = ToBytes("deleted by mirror semantics");
  return c;
}

/// The new tree: a<->b swapped (an adoption cycle), old/name.txt moved
/// to new/name.txt, edit.txt rewritten, added.txt created, doomed.txt
/// gone.
Collection AdoptNewTree() {
  Collection old_tree = AdoptOldTree();
  Collection c;
  c["keep.txt"] = old_tree["keep.txt"];
  c["a.bin"] = old_tree["b.bin"];
  c["b.bin"] = old_tree["a.bin"];
  c["new/name.txt"] = old_tree["old/name.txt"];
  c["edit.txt"] = ToBytes("NEW edit.txt content, a little longer than old");
  c["added.txt"] = ToBytes("created by this sync");
  return c;
}

std::vector<AdoptOp> Adopts() {
  return {{"a.bin", "b.bin"}, {"b.bin", "a.bin"}, {"new/name.txt", "old/name.txt"}};
}

/// `files` for ApplyTreeWithAdopts: the target tree minus the adopted
/// paths (adopt targets must not also appear in `files`).
Collection WrittenFiles() {
  Collection files = AdoptNewTree();
  for (const AdoptOp& op : Adopts()) {
    files.erase(op.path);
  }
  return files;
}

class AdoptCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_tree_crash_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void ResetTree() {
    fs::remove_all(root_);
    ASSERT_TRUE(StoreTree(root_, AdoptOldTree(), true, true).ok());
  }

  bool RunApply() {
    auto r = ApplyTreeWithAdopts(root_, WrittenFiles(), Adopts(),
                                 BuildManifest(AdoptOldTree()));
    return r.ok();
  }

  /// The per-file crash contract: every surviving path holds bit-exactly
  /// its old or its new bytes — in particular, neither side of the swap
  /// may ever be torn or hold a third value.
  void ExpectOldOrNew(const std::string& context) {
    Collection old_files = AdoptOldTree();
    Collection new_files = AdoptNewTree();
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok()) << context << ": " << disk.status().ToString();
    for (const auto& [name, data] : *disk) {
      bool is_old = old_files.contains(name) && old_files.at(name) == data;
      bool is_new = new_files.contains(name) && new_files.at(name) == data;
      EXPECT_TRUE(is_old || is_new)
          << context << ": torn or foreign content in " << name;
    }
    for (const auto& [name, data] : old_files) {
      if (!new_files.contains(name)) {
        continue;  // deletion in flight: present-old or absent are both fine
      }
      EXPECT_TRUE(disk->contains(name))
          << context << ": " << name << " vanished";
    }
  }

  void ExpectNoApplyDebris(const std::string& context) {
    for (auto it = fs::recursive_directory_iterator(root_);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) {
        continue;
      }
      std::string name = it->path().filename().string();
      EXPECT_FALSE(name.ends_with(kTempSuffix))
          << context << ": stranded temp " << it->path();
      EXPECT_FALSE(name.ends_with(kJournalSuffix))
          << context << ": surviving journal " << it->path();
    }
  }

  /// What a real re-sync does after a crash: re-plan against the tree
  /// as it survived, not against the pre-crash snapshot. A half-applied
  /// swap leaves the old bytes nowhere in the tree, so replaying the
  /// original adopt list cannot converge — the fresh plan always can.
  void ConvergeFromDisk(const std::string& context) {
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok()) << context << ": " << disk.status().ToString();
    auto again =
        ApplyTree(root_, AdoptNewTree(), BuildManifest(*disk));
    ASSERT_TRUE(again.ok()) << context << ": " << again.status().ToString();
    EXPECT_TRUE(again->conflicts.empty()) << context;
    auto final_disk = LoadTree(root_);
    ASSERT_TRUE(final_disk.ok()) << context;
    EXPECT_EQ(*final_disk, AdoptNewTree())
        << context << ": re-plan did not converge";
  }

  std::string root_;
};

TEST_F(AdoptCrashTest, UninterruptedApplyAdoptsAndConverges) {
  ResetTree();
  auto r = ApplyTreeWithAdopts(root_, WrittenFiles(), Adopts(),
                               BuildManifest(AdoptOldTree()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->files_adopted, 3u);
  EXPECT_TRUE(r->conflicts.empty());
  auto disk = LoadTree(root_);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(*disk, AdoptNewTree());
  // The rename completed: mirror deletion swept the source path.
  EXPECT_FALSE(disk->contains("old/name.txt"));
  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok());
  EXPECT_TRUE(dirty->empty());
}

TEST_F(AdoptCrashTest, EveryKillPointRecoversToOldOrNew) {
  ResetTree();
  uint64_t total = fsx::testing::CountCrashPoints([&] { return RunApply(); });
  ASSERT_GT(total, 0u) << "adopt apply fired no crash points";

  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "kill-point " + std::to_string(n);
    ResetTree();
    CrashRunResult run = RunWithCrashAt(n, [&] { return RunApply(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
        << ctx << ": " << run.error;

    // Staging and rename keep every file old-or-new even pre-recovery.
    ExpectOldOrNew(ctx + " pre-recovery");

    obs::SyncObserver obs;
    auto rec = RecoverTree(root_, &obs);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    ExpectOldOrNew(ctx + " post-recovery");
    ExpectNoApplyDebris(ctx);
    if (rec->had_journal) {
      EXPECT_EQ(obs.event_count(obs::Event::kRecovery), 1u) << ctx;
      auto dirty = VerifyTree(root_);
      ASSERT_TRUE(dirty.ok()) << ctx << ": " << dirty.status().ToString();
      EXPECT_TRUE(dirty->empty()) << ctx;
    }

    ConvergeFromDisk(ctx);
  }
}

TEST_F(AdoptCrashTest, ReplayingTheStaleAdoptPlanIsSafe) {
  // Replaying the ORIGINAL plan over a half-applied tree must never
  // corrupt anything: stale adoptions surface as per-file conflicts
  // (source gone, or disk no longer as the plan last saw it), and every
  // file stays bit-exactly old or new.
  ResetTree();
  uint64_t total = fsx::testing::CountCrashPoints([&] { return RunApply(); });
  ASSERT_GT(total, 0u);

  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "stale-replay after kill-point " + std::to_string(n);
    ResetTree();
    CrashRunResult run = RunWithCrashAt(n, [&] { return RunApply(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
        << ctx << ": " << run.error;
    auto rec = RecoverTree(root_);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();

    auto again = ApplyTreeWithAdopts(root_, WrittenFiles(), Adopts(),
                                     BuildManifest(AdoptOldTree()));
    // Per-file conflicts are fine; the apply as a whole must succeed
    // and the tree must still be old-or-new everywhere.
    ASSERT_TRUE(again.ok()) << ctx << ": " << again.status().ToString();
    ExpectOldOrNew(ctx);
    ExpectNoApplyDebris(ctx);
  }
}

}  // namespace
}  // namespace fsx::store

#endif  // __unix__ || __APPLE__
