// Pins the determinism contract: `num_threads` is a host-side execution
// knob, so running any protocol with a thread pool must produce wire
// traffic — every message, byte for byte, in order — and results
// identical to the serial run. Compares full channel transcripts across
// thread counts for all registered protocols, then repeats the whole
// differential invariant sweep threaded. Labeled `conformance` (and run
// under TSAN in CI, where the transcript comparison doubles as a data
// race driver for the parallel hot paths).
#include <gtest/gtest.h>

#include <vector>

#include "fsync/core/broadcast.h"
#include "fsync/testing/corpus.h"
#include "fsync/testing/differential.h"
#include "fsync/testing/protocols.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

constexpr int kThreads = 4;

// Shapes that exercise every matching path: heavy scanning, tail blocks,
// empties, and near-identical files.
std::vector<CorpusPair> TranscriptCorpus(uint64_t seed) {
  std::vector<CorpusPair> corpus;
  for (CorpusShape shape : AllCorpusShapes()) {
    corpus.push_back(MakeCorpusPair(shape, seed));
  }
  return corpus;
}

TEST(ThreadedConformance, RegistriesPairUp) {
  const auto& serial = ConformanceProtocols();
  std::vector<ProtocolEntry> threaded =
      ThreadedConformanceProtocols(kThreads);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, threaded[i].name);
  }
}

TEST(ThreadedConformance, WireTrafficBitIdenticalAcrossThreadCounts) {
  const uint64_t seed = SeedFromEnv(29);
  const auto& serial = ConformanceProtocols();
  std::vector<ProtocolEntry> threaded =
      ThreadedConformanceProtocols(kThreads);
  for (const CorpusPair& pair : TranscriptCorpus(seed)) {
    for (size_t p = 0; p < serial.size(); ++p) {
      SimulatedChannel ch1;
      ch1.EnableTranscript();
      auto r1 = serial[p].run(pair.f_old, pair.f_new, ch1, nullptr);
      SimulatedChannel chn;
      chn.EnableTranscript();
      auto rn = threaded[p].run(pair.f_old, pair.f_new, chn, nullptr);

      SCOPED_TRACE(serial[p].name + " / " + pair.Label() +
                   " FSX_SEED=" + std::to_string(seed));
      ASSERT_EQ(r1.ok(), rn.ok());
      if (!r1.ok()) {
        continue;
      }
      EXPECT_EQ(r1->reconstructed, rn->reconstructed);
      EXPECT_EQ(r1->stats.total_bytes(), rn->stats.total_bytes());
      EXPECT_EQ(r1->stats.roundtrips, rn->stats.roundtrips);
      EXPECT_EQ(r1->fell_back, rn->fell_back);
      EXPECT_EQ(r1->rounds, rn->rounds);

      const auto& t1 = ch1.transcript();
      const auto& tn = chn.transcript();
      ASSERT_EQ(t1.size(), tn.size()) << "message count diverged";
      for (size_t m = 0; m < t1.size(); ++m) {
        ASSERT_EQ(static_cast<int>(t1[m].dir), static_cast<int>(tn[m].dir))
            << "message " << m;
        ASSERT_EQ(t1[m].payload, tn[m].payload)
            << "payload of message " << m << " diverged";
      }
    }
  }
}

TEST(ThreadedConformance, DifferentialSweepPassesThreaded) {
  // The full invariant sweep (reconstruction, accounting, drained
  // channel, traffic bounds, cross-protocol agreement) with every
  // protocol running on the pool.
  const uint64_t seed = SeedFromEnv(3);
  std::vector<CorpusPair> corpus = MakeConformanceCorpus(1, seed);
  std::vector<ProtocolEntry> threaded =
      ThreadedConformanceProtocols(kThreads);
  DifferentialReport report = RunDifferential(corpus, threaded);
  EXPECT_TRUE(report.ok()) << "FSX_SEED=" << seed << "\n"
                           << report.Summary();
  EXPECT_EQ(report.runs, corpus.size() * threaded.size());
}

TEST(ThreadedConformance, HashCastPayloadIdenticalAcrossThreadCounts) {
  // The broadcast builder takes num_threads as an argument (it has no
  // params struct); its cast payload and the client's map must not
  // depend on it.
  const uint64_t seed = SeedFromEnv(41);
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, seed);
  HashCastConfig config;
  auto serial_cast = BuildHashCast(pair.f_new, config, 1);
  auto threaded_cast = BuildHashCast(pair.f_new, config, kThreads);
  ASSERT_TRUE(serial_cast.ok() && threaded_cast.ok());
  EXPECT_EQ(*serial_cast, *threaded_cast);

  auto serial_map = ApplyHashCast(pair.f_old, *serial_cast, 1);
  auto threaded_map = ApplyHashCast(pair.f_old, *serial_cast, kThreads);
  ASSERT_TRUE(serial_map.ok() && threaded_map.ok());
  ASSERT_EQ(serial_map->ranges.size(), threaded_map->ranges.size());
  for (size_t i = 0; i < serial_map->ranges.size(); ++i) {
    EXPECT_EQ(serial_map->ranges[i].begin, threaded_map->ranges[i].begin);
    EXPECT_EQ(serial_map->ranges[i].length,
              threaded_map->ranges[i].length);
    EXPECT_EQ(serial_map->ranges[i].src, threaded_map->ranges[i].src);
  }
}

}  // namespace
}  // namespace fsx
