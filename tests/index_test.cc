// Unit tests for the shared matching core's flat block index and rolling
// scan: insertion-order probing (the property rsync's wire format leans
// on), growth rehash, the bitmap prefilter's false-positive bound, and
// serial/sharded scan equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fsync/index/block_index.h"
#include "fsync/index/scan.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

TEST(BlockIndex, EmptyIndexFindsNothing) {
  BlockIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.FindFirst(0), nullptr);
  EXPECT_EQ(index.FindFirst(12345), nullptr);
  int calls = 0;
  index.ForEach(7, [&](const BlockIndex::Entry&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(calls, 0);
}

TEST(BlockIndex, InsertAndFindFirst) {
  BlockIndex index;
  index.Reserve(4);
  index.Insert(10, 0xAA, 1);
  index.Insert(20, 0xBB, 2);
  index.Insert(30, 0xCC, 3);
  ASSERT_NE(index.FindFirst(20), nullptr);
  EXPECT_EQ(index.FindFirst(20)->tag, 0xBBu);
  EXPECT_EQ(index.FindFirst(20)->idx, 2u);
  EXPECT_EQ(index.FindFirst(40), nullptr);
  EXPECT_EQ(index.size(), 3u);
}

TEST(BlockIndex, DuplicateKeysProbeInInsertionOrder) {
  BlockIndex index;
  index.Reserve(8);
  // Same key inserted out of idx order: probe order must follow the
  // inserts, not the payloads (rsync's lowest-block-index-wins selection
  // inserts in block order and depends on getting them back that way).
  index.Insert(99, 0x1, 5);
  index.Insert(99, 0x2, 3);
  index.Insert(99, 0x3, 8);
  std::vector<uint32_t> seen;
  index.ForEach(99, [&](const BlockIndex::Entry& e) {
    seen.push_back(e.idx);
    return false;
  });
  EXPECT_EQ(seen, (std::vector<uint32_t>{5, 3, 8}));
  ASSERT_NE(index.FindFirst(99), nullptr);
  EXPECT_EQ(index.FindFirst(99)->idx, 5u);
}

TEST(BlockIndex, ForEachStopsEarlyWhenFnReturnsTrue) {
  BlockIndex index;
  index.Insert(7, 0, 0);
  index.Insert(7, 0, 1);
  index.Insert(7, 0, 2);
  std::vector<uint32_t> seen;
  index.ForEach(7, [&](const BlockIndex::Entry& e) {
    seen.push_back(e.idx);
    return e.idx == 1;
  });
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 1}));
}

TEST(BlockIndex, GrowthRehashPreservesProbeOrder) {
  // Insert far past the default capacity with no Reserve, forcing
  // several growth rehashes, with duplicate keys sprinkled throughout.
  BlockIndex index;
  constexpr uint64_t kDupKey = 0xDEADBEEF;
  std::vector<uint32_t> expected_dups;
  for (uint32_t i = 0; i < 5000; ++i) {
    if (i % 7 == 0) {
      index.Insert(kDupKey, i, i);
      expected_dups.push_back(i);
    } else {
      index.Insert(i, i * 2 + 1, i);
    }
  }
  EXPECT_EQ(index.size(), 5000u);
  std::vector<uint32_t> seen;
  index.ForEach(kDupKey, [&](const BlockIndex::Entry& e) {
    seen.push_back(e.idx);
    return false;
  });
  EXPECT_EQ(seen, expected_dups);
  // Unique keys survived the rehashes too.
  ASSERT_NE(index.FindFirst(12), nullptr);
  EXPECT_EQ(index.FindFirst(12)->tag, 25u);
}

TEST(BlockIndex, ClearKeepsCapacityAndDropsEverything) {
  BlockIndex index;
  index.Reserve(1000);
  for (uint32_t i = 0; i < 1000; ++i) {
    index.Insert(i, 0, i);
  }
  size_t cap = index.capacity();
  EXPECT_GE(cap, 2000u);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.capacity(), cap);
  EXPECT_EQ(index.FindFirst(5), nullptr);
  EXPECT_FALSE(index.MaybeContains(5));
  // Reusable after Clear.
  index.Insert(5, 1, 2);
  ASSERT_NE(index.FindFirst(5), nullptr);
  EXPECT_TRUE(index.MaybeContains(5));
}

TEST(BlockIndex, PrefilterHasNoFalseNegatives) {
  BlockIndex index;
  Rng rng(17);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back(rng.Next());
    index.Insert(keys.back(), 0, static_cast<uint32_t>(i));
  }
  for (uint64_t key : keys) {
    EXPECT_TRUE(index.MaybeContains(key));
    EXPECT_NE(index.FindFirst(key), nullptr);
  }
}

TEST(BlockIndex, PrefilterFalsePositiveRateIsBounded) {
  // With k distinct keys the prefilter sets at most k of 2^16 bits, so
  // the FP rate for independent absent keys is <= k / 65536. Allow 2x
  // slack for sampling noise.
  BlockIndex index;
  Rng rng(23);
  std::unordered_set<uint64_t> present;
  constexpr int kKeys = 2048;
  for (int i = 0; i < kKeys; ++i) {
    uint64_t key = rng.Next();
    present.insert(key);
    index.Insert(key, 0, static_cast<uint32_t>(i));
  }
  int probes = 0;
  int hits = 0;
  while (probes < 100000) {
    uint64_t key = rng.Next();
    if (present.count(key)) {
      continue;
    }
    ++probes;
    if (index.MaybeContains(key)) {
      ++hits;
    }
  }
  double rate = static_cast<double>(hits) / probes;
  double bound = 2.0 * kKeys / 65536.0;
  EXPECT_LT(rate, bound) << "FP rate " << rate << " exceeds " << bound;
}

TEST(BlockIndex, PrefilterCollisionResolvedByFullKey) {
  // 0x1 and 0x10000 fold to the same prefilter bit; the probe itself
  // must still separate them.
  ASSERT_EQ(BlockIndex::Fold16(0x1), BlockIndex::Fold16(0x10000));
  BlockIndex index;
  index.Insert(0x10000, 0, 1);
  EXPECT_TRUE(index.MaybeContains(0x1));  // prefilter false positive
  EXPECT_EQ(index.FindFirst(0x1), nullptr);
  ASSERT_NE(index.FindFirst(0x10000), nullptr);
}

TEST(Scan, FindsEarliestMatchPerKey) {
  // haystack: "abcdXXabcdYYabcd", size 4, key of "abcd" must report the
  // first occurrence even though it repeats.
  Bytes hay = {'a', 'b', 'c', 'd', 'X', 'X', 'a', 'b',
               'c', 'd', 'Y', 'Y', 'a', 'b', 'c', 'd'};
  uint32_t key = TabledAdler::Truncate(
      TabledAdler::Hash(ByteSpan(hay.data(), 4)), 32);
  std::vector<uint32_t> keys = {key, 0xDEAD};
  std::vector<uint64_t> pos;
  ScanForKeys(hay, 4, 32, keys,
              [](size_t, uint64_t) { return true; }, pos);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 0u);
  EXPECT_EQ(pos[1], kScanNoMatch);
}

TEST(Scan, VerifyRejectionSkipsToLaterPosition) {
  Bytes hay = {'a', 'b', 'a', 'b', 'a', 'b'};
  uint32_t key = TabledAdler::Truncate(
      TabledAdler::Hash(ByteSpan(hay.data(), 2)), 24);
  std::vector<uint32_t> keys = {key};
  std::vector<uint64_t> pos;
  // Reject position 0; the scan must settle on the next weak match.
  ScanForKeys(hay, 2, 24, keys,
              [](size_t, uint64_t p) { return p > 0; }, pos);
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], 2u);
}

TEST(Scan, ShardedScanMatchesSerialScan) {
  Rng rng(31);
  Bytes hay = rng.RandomBytes(300000);
  constexpr uint64_t kSize = 128;
  // Keys taken from real positions (guaranteed matches at known offsets)
  // plus random absent keys.
  std::vector<uint32_t> keys;
  for (uint64_t off : {0ull, 777ull, 150000ull, 299000ull}) {
    keys.push_back(TabledAdler::Truncate(
        TabledAdler::Hash(ByteSpan(hay.data() + off, kSize)), 32));
  }
  for (int i = 0; i < 16; ++i) {
    keys.push_back(static_cast<uint32_t>(rng.Next()));
  }
  auto verify = [](size_t, uint64_t) { return true; };
  std::vector<uint64_t> serial;
  ScanForKeys(hay, kSize, 32, keys, verify, serial);
  ScanOptions opts;
  opts.num_threads = 4;
  opts.min_shard_windows = 1024;  // force sharding on this small input
  BlockIndex scratch;
  std::vector<uint64_t> sharded;
  ScanForKeys(hay, kSize, 32, keys, verify, sharded, opts, &scratch);
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(serial[0], 0u);
}

TEST(Scan, GroupBySizeIsFirstSeenOrder) {
  std::vector<uint64_t> sizes = {8, 4, 8, 16, 4, 8};
  auto groups =
      GroupBySize(sizes.size(), [&](size_t i) { return sizes[i]; });
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].first, 8u);
  EXPECT_EQ(groups[0].second, (std::vector<size_t>{0, 2, 5}));
  EXPECT_EQ(groups[1].first, 4u);
  EXPECT_EQ(groups[1].second, (std::vector<size_t>{1, 4}));
  EXPECT_EQ(groups[2].first, 16u);
  EXPECT_EQ(groups[2].second, (std::vector<size_t>{3}));
}

}  // namespace
}  // namespace fsx
