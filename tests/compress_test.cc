#include <gtest/gtest.h>

#include "fsync/compress/codec.h"
#include "fsync/compress/huffman.h"
#include "fsync/compress/lz77.h"
#include "fsync/util/random.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

// --- Huffman -----------------------------------------------------------

TEST(Huffman, CodeLengthsRespectLimitAndKraft) {
  std::vector<uint64_t> freqs(64);
  for (size_t i = 0; i < freqs.size(); ++i) {
    freqs[i] = (i + 1) * (i + 1) * (i + 1);  // heavily skewed
  }
  std::vector<uint8_t> lens = BuildCodeLengths(freqs, 7);
  double kraft = 0;
  for (uint8_t l : lens) {
    ASSERT_LE(l, 7);
    ASSERT_GE(l, 1);  // all symbols used
    kraft += 1.0 / (1 << l);
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[4] = 100;
  std::vector<uint8_t> lens = BuildCodeLengths(freqs, 15);
  EXPECT_EQ(lens[4], 1);
  for (size_t i = 0; i < lens.size(); ++i) {
    if (i != 4) {
      EXPECT_EQ(lens[i], 0);
    }
  }
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<uint64_t> freqs = {50, 20, 10, 5, 5, 5, 3, 1, 1};
  std::vector<uint8_t> lens = BuildCodeLengths(freqs, 15);
  auto enc = HuffmanEncoder::Build(lens);
  ASSERT_TRUE(enc.ok());
  auto dec = HuffmanDecoder::Build(lens);
  ASSERT_TRUE(dec.ok());

  Rng rng(11);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 2000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.Uniform(freqs.size())));
  }
  BitWriter w;
  for (uint32_t s : symbols) {
    enc->Encode(s, w);
  }
  Bytes buf = w.Finish();
  BitReader r(buf);
  for (uint32_t s : symbols) {
    auto got = dec->Decode(r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, s);
  }
}

TEST(Huffman, OptimalForSkewedDistribution) {
  // The most frequent symbol must get the shortest code.
  std::vector<uint64_t> freqs = {1000, 1, 1, 1};
  std::vector<uint8_t> lens = BuildCodeLengths(freqs, 15);
  EXPECT_LT(lens[0], lens[1]);
}

TEST(Huffman, DecoderRejectsOversubscribedCode) {
  std::vector<uint8_t> bad = {1, 1, 1};  // 3 codes of length 1
  EXPECT_FALSE(HuffmanDecoder::Build(bad).ok());
}

TEST(Huffman, DecoderRejectsIncompleteMultiSymbolCode) {
  std::vector<uint8_t> bad = {2, 2, 0};  // covers half the space, 2 symbols
  EXPECT_FALSE(HuffmanDecoder::Build(bad).ok());
}

TEST(Huffman, CodeLengthTableRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> freqs(286, 0);
    int used = 1 + static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < used; ++i) {
      freqs[rng.Uniform(freqs.size())] += 1 + rng.Uniform(1000);
    }
    std::vector<uint8_t> lens = BuildCodeLengths(freqs, 15);
    BitWriter w;
    WriteCodeLengthTable(lens, w);
    Bytes buf = w.Finish();
    BitReader r(buf);
    std::vector<uint8_t> back;
    ASSERT_TRUE(ReadCodeLengthTable(lens.size(), r, back).ok());
    EXPECT_EQ(back, lens);
  }
}

// --- LZ77 ---------------------------------------------------------------

TEST(Lz77, TokensReconstructInput) {
  Rng rng(21);
  Bytes data = SynthSourceFile(rng, 20000);
  std::vector<Lz77Token> tokens = Lz77Tokenize(data);
  Bytes rebuilt;
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      ASSERT_LE(t.distance, rebuilt.size());
      size_t start = rebuilt.size() - t.distance;
      for (uint32_t k = 0; k < t.length; ++k) {
        rebuilt.push_back(rebuilt[start + k]);
      }
    } else {
      rebuilt.push_back(t.literal);
    }
  }
  EXPECT_EQ(rebuilt, data);
}

TEST(Lz77, FindsLongRepeats) {
  Bytes data;
  Bytes unit = ToBytes("0123456789abcdef");
  for (int i = 0; i < 64; ++i) {
    Append(data, unit);
  }
  std::vector<Lz77Token> tokens = Lz77Tokenize(data);
  // A repetitive kilobyte must collapse to a handful of tokens.
  EXPECT_LT(tokens.size(), 40u);
}

TEST(Lz77, ShortInputsAreLiterals) {
  Bytes data = ToBytes("ab");
  std::vector<Lz77Token> tokens = Lz77Tokenize(data);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_FALSE(tokens[0].is_match);
  EXPECT_FALSE(tokens[1].is_match);
}

// --- Codec ----------------------------------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTrip, RandomizedContent) {
  Rng rng(GetParam());
  size_t size = rng.Uniform(50000);
  // Mix of three textures: random (incompressible), text, repetitive.
  Bytes data;
  switch (GetParam() % 3) {
    case 0:
      data = rng.RandomBytes(size);
      break;
    case 1:
      data = SynthSourceFile(rng, size);
      break;
    default: {
      Bytes unit = rng.RandomBytes(1 + rng.Uniform(64));
      while (data.size() < size) {
        Append(data, unit);
      }
      break;
    }
  }
  Bytes packed = Compress(data);
  auto back = Decompress(packed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecRoundTrip, ::testing::Range(0, 24));

TEST(Codec, EmptyInput) {
  Bytes packed = Compress({});
  auto back = Decompress(packed);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Codec, CompressesText) {
  Rng rng(31);
  Bytes data = SynthSourceFile(rng, 100000);
  Bytes packed = Compress(data);
  // Synthetic source is highly redundant; expect at least 3x.
  EXPECT_LT(packed.size(), data.size() / 3);
}

TEST(Codec, IncompressibleFallsBackToStored) {
  Rng rng(33);
  Bytes data = rng.RandomBytes(10000);
  Bytes packed = Compress(data);
  // Stored mode: tiny overhead only.
  EXPECT_LE(packed.size(), data.size() + 16);
}

TEST(Codec, DecompressRejectsCorruptHeader) {
  EXPECT_FALSE(Decompress(Bytes{}).ok());
  Bytes garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                   0xFF, 0xFF};
  EXPECT_FALSE(Decompress(garbage).ok());
}

TEST(Codec, DecompressRejectsTruncation) {
  Rng rng(35);
  Bytes data = SynthSourceFile(rng, 5000);
  Bytes packed = Compress(data);
  for (size_t cut : {packed.size() / 4, packed.size() / 2,
                     packed.size() - 1}) {
    Bytes truncated(packed.begin(), packed.begin() + cut);
    auto r = Decompress(truncated);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(Codec, BitflipsNeverCrash) {
  Rng rng(37);
  Bytes data = SynthSourceFile(rng, 3000);
  Bytes packed = Compress(data);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = packed;
    corrupt[rng.Uniform(corrupt.size())] ^=
        static_cast<uint8_t>(1 << rng.Uniform(8));
    auto r = Decompress(corrupt);  // must not crash; may fail or differ
    if (r.ok() && *r == data) {
      continue;  // flip in padding
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace fsx
