// Format-stability ("golden") tests: pin exact outputs of everything
// that defines a wire or on-disk format. An intentional format change
// must update these values AND docs/PROTOCOL.md together; an accidental
// change (e.g. reordering hash inputs, touching the substitution table,
// re-tuning a default) fails here before it silently breaks
// interoperability between differently-built endpoints.
#include <gtest/gtest.h>

#include "fsync/compress/codec.h"
#include "fsync/core/session.h"
#include "fsync/delta/zd.h"
#include "fsync/hash/karp_rabin.h"
#include "fsync/hash/md5.h"
#include "fsync/hash/tabled_adler.h"
#include "fsync/util/hex.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

const char kPangram[] = "The quick brown fox jumps over the lazy dog";

TEST(Golden, TabledAdlerValues) {
  AdlerPair p = TabledAdler::Hash(ToBytes(kPangram));
  EXPECT_EQ(p.a, 57962);
  EXPECT_EQ(p.b, 18479);
  EXPECT_EQ(TabledAdler::Truncate(p, 24), 8581738u);
}

TEST(Golden, KarpRabinValue) {
  EXPECT_EQ(KarpRabin::Hash(ToBytes(kPangram)), 276640233276435057ULL);
}

TEST(Golden, WorkloadGeneratorIsStable) {
  // Benches and EXPERIMENTS.md quote numbers for these seeds; the
  // generator must keep producing identical bytes.
  Rng rng(12345);
  Bytes text = SynthSourceFile(rng, 20000);
  EXPECT_EQ(text.size(), 20737u);
  EXPECT_EQ(HexEncode(Md5::Hash(text)),
            "b6473c18a81b8a70a3ecfe4021d04d56");
}

TEST(Golden, StreamCodecFormat) {
  Rng rng(12345);
  Bytes text = SynthSourceFile(rng, 20000);
  Bytes packed = Compress(text);
  EXPECT_EQ(packed.size(), 5099u);
  EXPECT_EQ(HexEncode(Md5::Hash(packed)),
            "4e5ad5671abb5fb59313fa4204661cb9");
}

TEST(Golden, ZdDeltaFormat) {
  Rng rng(12345);
  Bytes text = SynthSourceFile(rng, 20000);
  EditProfile ep;
  ep.num_edits = 7;
  Bytes text2 = ApplyEdits(text, ep, rng);
  Bytes delta = std::move(ZdEncode(text, text2)).value();
  EXPECT_EQ(delta.size(), 92u);
  EXPECT_EQ(HexEncode(Md5::Hash(delta)),
            "be581341984da228b0bb6464b8d06a33");
}

TEST(Golden, SessionTrafficIsStable) {
  // The exact byte counts of a fixed session pin the whole protocol
  // encoding stack (plans, bitmaps, hash widths, verification layout).
  Rng rng(12345);
  Bytes text = SynthSourceFile(rng, 20000);
  EditProfile ep;
  ep.num_edits = 7;
  Bytes text2 = ApplyEdits(text, ep, rng);
  SyncConfig config;
  SimulatedChannel channel;
  auto r = SynchronizeFile(text, text2, config, channel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reconstructed, text2);
  EXPECT_EQ(r->stats.client_to_server_bytes, 75u);
  EXPECT_EQ(r->stats.server_to_client_bytes, 294u);
  EXPECT_EQ(r->stats.roundtrips, 11u);
}

}  // namespace
}  // namespace fsx
