// Unit tests for the observability layer (fsync/obs): metrics
// primitives, the JSON emitter, the SyncObserver byte matrix, and the
// central host-side-only guarantee — attaching an observer (with or
// without a trace sink) never changes a single wire byte or roundtrip of
// any protocol. docs/PROTOCOL.md cites that pin.
#include <gtest/gtest.h>

#include <string>

#include "fsync/obs/json.h"
#include "fsync/obs/metrics.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/obs/trace.h"
#include "fsync/testing/corpus.h"
#include "fsync/testing/protocols.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

using obs::Flow;
using obs::Phase;

TEST(Counter, AddAndIncrement) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Histogram, TracksExactMoments) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.Record(0);
  h.Record(1);
  h.Record(7);
  h.Record(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1032u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 258.0);
}

TEST(Histogram, PowerOfTwoBucketing) {
  obs::Histogram h;
  h.Record(0);     // bucket 0
  h.Record(1);     // [1, 2)     -> bucket 1
  h.Record(2);     // [2, 4)     -> bucket 2
  h.Record(3);     // [2, 4)     -> bucket 2
  h.Record(4);     // [4, 8)     -> bucket 3
  h.Record(1023);  // [512,1024) -> bucket 10
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Histogram, MergeAddsEveryObservation) {
  obs::Histogram a;
  obs::Histogram b;
  a.Record(2);
  a.Record(100);
  b.Record(1);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 2u + 100u + 1u + 1000000u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000000u);
  // Merging an empty histogram changes nothing.
  obs::Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Histogram, PercentileUpperBoundBracketsTheRank) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  // p0 and p100 are exact (clamped to min/max).
  EXPECT_EQ(h.PercentileUpperBound(0.0), 1u);
  EXPECT_EQ(h.PercentileUpperBound(1.0), 100u);
  // The median of 1..100 lies in [33, 64]; the upper bound reported is
  // the bucket edge 63 (bucket [32, 64) holds ranks 32..63).
  uint64_t p50 = h.PercentileUpperBound(0.5);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 100u);
}

TEST(MetricsRegistry, InstrumentsAreStableAndOrdered) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("b.count");
  c.Add(3);
  reg.counter("a.count").Add(1);
  reg.histogram("lat").Record(10);
  EXPECT_EQ(reg.counter("b.count").value(), 3u);  // same instrument
  EXPECT_EQ(reg.counters().begin()->first, "a.count");
  EXPECT_EQ(reg.histograms().at("lat").count(), 1u);
}

TEST(ScopedTimer, RecordsIntoSinkAndNoopsOnNull) {
  obs::Histogram h;
  {
    obs::ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    obs::ScopedTimer t(nullptr);
    EXPECT_EQ(t.ElapsedNs(), 0u);
  }  // must not crash
}

TEST(JsonWriter, NestedStructuresAndEscaping) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("a\"b\\c\n\t");
  w.Key("n");
  w.Uint(18446744073709551615ull);
  w.Key("i");
  w.Int(-7);
  w.Key("d");
  w.Double(0.5);
  w.Key("b");
  w.Bool(true);
  w.Key("z");
  w.Null();
  w.Key("arr");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.BeginObject();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Take(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"n\":18446744073709551615,"
            "\"i\":-7,\"d\":0.5,\"b\":true,\"z\":null,"
            "\"arr\":[1,2,{}]}");
}

TEST(SyncObserver, AccumulatesPerPhaseAndDirection) {
  obs::SyncObserver o;
  o.set_phase(Phase::kHandshake);
  o.OnWireMessage(Flow::kUp, 10);
  o.set_phase(Phase::kCandidates);
  o.OnWireMessage(Flow::kDown, 100);
  o.OnWireMessage(Flow::kDown, 1);
  o.AddBytes(Phase::kHandshake, Flow::kUp, 16);

  EXPECT_EQ(o.phase_bytes(Phase::kHandshake, Flow::kUp), 26u);
  EXPECT_EQ(o.phase_bytes(Phase::kCandidates, Flow::kDown), 101u);
  EXPECT_EQ(o.phase_bytes(Phase::kCandidates), 101u);
  EXPECT_EQ(o.dir_bytes(Flow::kUp), 26u);
  EXPECT_EQ(o.dir_bytes(Flow::kDown), 101u);
  EXPECT_EQ(o.total_bytes(), 127u);
  // Only wire messages feed the message-size histogram.
  EXPECT_EQ(o.message_bytes().count(), 3u);
}

TEST(SyncObserver, ReattributeClampsAndPreservesTotals) {
  obs::SyncObserver o;
  o.set_phase(Phase::kCandidates);
  o.OnWireMessage(Flow::kDown, 100);
  // Ask to move more than the phase holds: clamped to 100.
  o.Reattribute(Phase::kCandidates, Phase::kDelta, Flow::kDown, 250);
  EXPECT_EQ(o.phase_bytes(Phase::kCandidates, Flow::kDown), 0u);
  EXPECT_EQ(o.phase_bytes(Phase::kDelta, Flow::kDown), 100u);
  EXPECT_EQ(o.total_bytes(), 100u);
}

TEST(SyncObserver, SnapshotRestoreRollsBackASubSession) {
  obs::SyncObserver o;
  o.set_phase(Phase::kHandshake);
  o.OnWireMessage(Flow::kUp, 5);
  obs::SyncObserver::State before = o.Snapshot();
  o.set_phase(Phase::kLiterals);
  o.OnWireMessage(Flow::kDown, 500);
  o.RecordRound(1, 10);
  o.Restore(before);
  EXPECT_EQ(o.total_bytes(), 5u);
  EXPECT_EQ(o.phase_bytes(Phase::kLiterals, Flow::kDown), 0u);
  EXPECT_EQ(o.rounds(), 0u);
}

TEST(SyncObserver, TraceSinkSeesMessagesRoundsAndSession) {
  obs::VectorTraceSink sink;
  obs::SyncObserver o;
  o.set_protocol("test-proto");
  o.set_sink(&sink);
  o.set_round(3);
  o.set_phase(Phase::kVerification);
  o.OnWireMessage(Flow::kUp, 42);
  o.RecordRound(3, 1000);
  o.RecordSession(5000);

  ASSERT_EQ(sink.events().size(), 3u);
  const obs::TraceEvent& msg = sink.events()[0];
  EXPECT_EQ(msg.kind, obs::EventKind::kMessage);
  EXPECT_STREQ(msg.protocol, "test-proto");
  EXPECT_EQ(msg.round, 3u);
  EXPECT_EQ(msg.phase, Phase::kVerification);
  EXPECT_EQ(msg.dir, Flow::kUp);
  EXPECT_EQ(msg.bytes, 42u);
  const obs::TraceEvent& round = sink.events()[1];
  EXPECT_EQ(round.kind, obs::EventKind::kRound);
  EXPECT_EQ(round.wall_ns, 1000u);
  const obs::TraceEvent& session = sink.events()[2];
  EXPECT_EQ(session.kind, obs::EventKind::kSession);
  EXPECT_EQ(session.bytes, 42u);
  EXPECT_EQ(session.wall_ns, 5000u);
}

TEST(SyncObserver, NullSafeHelpersAreNoops) {
  obs::SetPhase(nullptr, Phase::kDelta);
  obs::SetRound(nullptr, 9);
  obs::AddBytes(nullptr, Phase::kDelta, Flow::kUp, 1);
  obs::Reattribute(nullptr, Phase::kDelta, Phase::kLiterals, Flow::kUp, 1);
  obs::RecordRound(nullptr, 1, 1);  // must not crash
}

TEST(SyncObserver, FlushToNamesRegistryInstruments) {
  obs::SyncObserver o;
  o.set_phase(Phase::kCandidates);
  o.OnWireMessage(Flow::kDown, 64);
  o.RecordRound(1, 123);
  obs::MetricsRegistry reg;
  o.FlushTo(reg, "session");
  EXPECT_EQ(reg.counters().at("session.bytes.candidates.down").value(), 64u);
  EXPECT_EQ(reg.counters().at("session.rounds").value(), 1u);
  EXPECT_EQ(reg.histograms().at("session.round_ns").count(), 1u);
  EXPECT_EQ(reg.histograms().at("session.message_bytes").count(), 1u);
  // Zero phases are not emitted.
  EXPECT_EQ(reg.counters().count("session.bytes.fallback.up"), 0u);
}

TEST(JsonHelpers, WritePhaseBytesEmitsNonzeroPhases) {
  obs::SyncObserver o;
  o.set_phase(Phase::kLiterals);
  o.OnWireMessage(Flow::kDown, 7);
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("phases");
  obs::WritePhaseBytes(w, o);
  w.EndObject();
  std::string out = w.Take();
  EXPECT_NE(out.find("\"literals\":{\"up\":0,\"down\":7}"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("handshake"), std::string::npos) << out;
}

TEST(JsonHelpers, WriteMetricsEmitsCountersAndHistogramSummaries) {
  obs::MetricsRegistry reg;
  reg.counter("files").Add(3);
  reg.histogram("bytes").Record(8);
  obs::JsonWriter w;
  obs::WriteMetrics(w, reg);
  std::string out = w.Take();
  EXPECT_NE(out.find("\"files\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"count\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"p99\""), std::string::npos) << out;
}

// The load-bearing guarantee the docs promise: observation is host-side
// only. For every registered protocol, a run with an observer (and a
// recording trace sink) produces byte-for-byte the same wire traffic,
// roundtrip count, and reconstruction as a run without one.
TEST(ZeroWireImpact, ObserverNeverChangesTrafficOrResult) {
  const uint64_t seed = SeedFromEnv(21);
  for (CorpusShape shape :
       {CorpusShape::kClusteredEdits, CorpusShape::kIdentical,
        CorpusShape::kEmptyOld}) {
    CorpusPair pair = MakeCorpusPair(shape, seed);
    for (const ProtocolEntry& protocol : ConformanceProtocols()) {
      SimulatedChannel bare_channel;
      auto bare = protocol.run(pair.f_old, pair.f_new, bare_channel, nullptr);
      ASSERT_TRUE(bare.ok()) << protocol.name << " on " << pair.Label();

      obs::VectorTraceSink sink;
      obs::SyncObserver observer;
      observer.set_sink(&sink);
      SimulatedChannel observed_channel;
      auto observed = protocol.run(pair.f_old, pair.f_new, observed_channel,
                                   &observer);
      ASSERT_TRUE(observed.ok()) << protocol.name << " on " << pair.Label();

      const TrafficStats& a = bare_channel.stats();
      const TrafficStats& b = observed_channel.stats();
      EXPECT_EQ(a.client_to_server_bytes, b.client_to_server_bytes)
          << protocol.name << " on " << pair.Label();
      EXPECT_EQ(a.server_to_client_bytes, b.server_to_client_bytes)
          << protocol.name << " on " << pair.Label();
      EXPECT_EQ(a.roundtrips, b.roundtrips)
          << protocol.name << " on " << pair.Label();
      EXPECT_EQ(bare->reconstructed, observed->reconstructed)
          << protocol.name << " on " << pair.Label();
      // And the observer's books balance against the channel.
      EXPECT_EQ(observer.total_bytes(), b.total_bytes())
          << protocol.name << " on " << pair.Label();
      EXPECT_FALSE(sink.events().empty()) << protocol.name;
    }
  }
}

}  // namespace
}  // namespace fsx
