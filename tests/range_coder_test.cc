#include <gtest/gtest.h>

#include <cmath>

#include "fsync/compress/codec.h"
#include "fsync/compress/range_coder.h"
#include "fsync/util/random.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

TEST(RangeCoder, BitRoundTripAcrossBiases) {
  for (double p1 : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    Rng rng(static_cast<uint64_t>(p1 * 1000));
    std::vector<int> bits;
    for (int i = 0; i < 20000; ++i) {
      bits.push_back(rng.Bernoulli(p1) ? 1 : 0);
    }
    RangeEncoder enc;
    BitModel enc_model;
    for (int b : bits) {
      enc.EncodeBit(enc_model, b);
    }
    Bytes code = enc.Finish();
    RangeDecoder dec(code);
    BitModel dec_model;
    for (size_t i = 0; i < bits.size(); ++i) {
      ASSERT_EQ(dec.DecodeBit(dec_model), bits[i]) << "at bit " << i;
    }
  }
}

TEST(RangeCoder, ApproachesEntropyOnBiasedBits) {
  // 20000 bits at P(1)=0.05: entropy ~0.286 bits/bit ~ 716 bytes. The
  // adaptive coder must land within ~15% of that; a Huffman coder cannot
  // go below 1 bit/symbol on a binary alphabet at all.
  Rng rng(7);
  RangeEncoder enc;
  BitModel model;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    enc.EncodeBit(model, rng.Bernoulli(0.05) ? 1 : 0);
  }
  Bytes code = enc.Finish();
  double entropy_bits =
      n * (-(0.05 * std::log2(0.05) + 0.95 * std::log2(0.95)));
  EXPECT_LT(code.size() * 8.0, entropy_bits * 1.15);
  EXPECT_GT(code.size() * 8.0, entropy_bits * 0.9);
}

TEST(RangeCoder, ByteModelRoundTrip) {
  Rng rng(9);
  Bytes data = rng.RandomBytes(5000);
  RangeEncoder enc;
  ByteModel em;
  for (uint8_t b : data) {
    em.EncodeByte(enc, b);
  }
  Bytes code = enc.Finish();
  RangeDecoder dec(code);
  ByteModel dm;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(dm.DecodeByte(dec), data[i]) << "at byte " << i;
  }
}

TEST(RangeCompressTest, RoundTripVariedContent) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes data;
    switch (trial % 3) {
      case 0:
        data = rng.RandomBytes(rng.Uniform(20000));
        break;
      case 1:
        data = SynthSourceFile(rng, 10000);
        break;
      default:
        data.assign(10000, 0);  // degenerate
        for (int i = 0; i < 50; ++i) {
          data[rng.Uniform(data.size())] = 1;
        }
        break;
    }
    Bytes packed = RangeCompress(data);
    auto back = RangeDecompress(packed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, data);
  }
}

TEST(RangeCompressTest, CrushesNearZeroData) {
  // bsdiff's diff section: almost all zeros. The adaptive order-0 coder
  // should beat the LZ+Huffman codec decisively here.
  Rng rng(13);
  Bytes data(100000, 0);
  for (int i = 0; i < 800; ++i) {
    data[rng.Uniform(data.size())] =
        static_cast<uint8_t>(1 + rng.Uniform(255));
  }
  Bytes rc = RangeCompress(data);
  EXPECT_LT(rc.size(), data.size() / 25);
}

TEST(RangeCompressTest, EmptyInput) {
  Bytes packed = RangeCompress({});
  auto back = RangeDecompress(packed);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(RangeCompressTest, GarbageInputFailsOrBounds) {
  // Decoding garbage must never crash or over-allocate; the size header
  // bounds the output.
  Bytes junk = {0x10, 0xAB, 0xCD, 0xEF, 0x01, 0x23};
  auto r = RangeDecompress(junk);
  if (r.ok()) {
    EXPECT_EQ(r->size(), 0x10u);
  }
  EXPECT_FALSE(RangeDecompress(Bytes{}).ok());
}

}  // namespace
}  // namespace fsx
