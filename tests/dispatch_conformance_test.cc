// Pins the second half of the determinism contract: the simd/ dispatch
// tier — like `num_threads` — is a pure execution knob, so every
// protocol must emit wire traffic byte-for-byte identical whichever
// kernel tier (portable scalar, SSE4.2, ARMv8-CRC) the host runs. The
// suite forces each runnable tier in turn and compares full channel
// transcripts against the forced-scalar run, for every registered
// protocol, serial and threaded. On scalar-only machines the tier list
// collapses to {scalar} and the suite degenerates to a self-comparison
// (still verifying ForceTier plumbing). Labeled `conformance`.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fsync/net/channel.h"
#include "fsync/simd/dispatch.h"
#include "fsync/testing/corpus.h"
#include "fsync/testing/protocols.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

struct Transcript {
  bool ok = false;
  Bytes reconstructed;
  std::vector<SimulatedChannel::TranscriptEntry> messages;
};

Transcript RunUnderTier(const ProtocolEntry& protocol,
                        const CorpusPair& pair, simd::DispatchTier tier) {
  simd::ForceTier(tier);
  SimulatedChannel channel;
  channel.EnableTranscript();
  auto result = protocol.run(pair.f_old, pair.f_new, channel, nullptr);
  simd::ForceTier(std::nullopt);
  Transcript t;
  t.ok = result.ok();
  if (result.ok()) {
    t.reconstructed = result->reconstructed;
  }
  t.messages = channel.transcript();
  return t;
}

void ExpectIdentical(const Transcript& scalar, const Transcript& tiered,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(scalar.ok, tiered.ok);
  EXPECT_EQ(scalar.reconstructed, tiered.reconstructed);
  ASSERT_EQ(scalar.messages.size(), tiered.messages.size())
      << "message count diverged";
  for (size_t m = 0; m < scalar.messages.size(); ++m) {
    ASSERT_EQ(static_cast<int>(scalar.messages[m].dir),
              static_cast<int>(tiered.messages[m].dir))
        << "message " << m;
    ASSERT_EQ(scalar.messages[m].payload, tiered.messages[m].payload)
        << "payload of message " << m << " diverged";
  }
}

TEST(DispatchConformance, WireTrafficBitIdenticalAcrossTiers) {
  const uint64_t seed = SeedFromEnv(53);
  const auto& protocols = ConformanceProtocols();
  const std::vector<simd::DispatchTier> tiers = simd::AvailableTiers();
  for (CorpusShape shape : AllCorpusShapes()) {
    CorpusPair pair = MakeCorpusPair(shape, seed);
    for (const ProtocolEntry& protocol : protocols) {
      Transcript scalar =
          RunUnderTier(protocol, pair, simd::DispatchTier::kScalar);
      for (simd::DispatchTier tier : tiers) {
        Transcript tiered = RunUnderTier(protocol, pair, tier);
        ExpectIdentical(scalar, tiered,
                        protocol.name + " / " + pair.Label() + " / tier " +
                            simd::TierName(tier) +
                            " FSX_SEED=" + std::to_string(seed));
      }
    }
  }
}

TEST(DispatchConformance, TiersComposeWithThreadPool) {
  // Tier x threads: the two execution knobs together must still leave
  // the wire untouched (the HW kernels run inside pool workers here).
  const uint64_t seed = SeedFromEnv(59);
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, seed);
  const auto& serial = ConformanceProtocols();
  std::vector<ProtocolEntry> threaded = ThreadedConformanceProtocols(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    Transcript baseline =
        RunUnderTier(serial[p], pair, simd::DispatchTier::kScalar);
    for (simd::DispatchTier tier : simd::AvailableTiers()) {
      Transcript tiered = RunUnderTier(threaded[p], pair, tier);
      ExpectIdentical(baseline, tiered,
                      serial[p].name + " threaded / tier " +
                          simd::TierName(tier) +
                          " FSX_SEED=" + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace fsx
