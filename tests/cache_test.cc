// Edge cases of the content-addressed signature/delta cache
// (fsync/cache/): LRU eviction under tight byte budgets, cross-entry
// block dedup, config-digest mismatch bypass, stale-entry invalidation
// after a file's content changes, and concurrent sessions sharing one
// cache (run under TSAN in CI via the `par` label). Wire-level
// equivalence of cached and uncached runs is pinned separately in
// tests/cache_conformance_test.cc.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fsync/cache/dedup_store.h"
#include "fsync/cache/sync_cache.h"
#include "fsync/core/broadcast.h"
#include "fsync/core/collection.h"
#include "fsync/core/session.h"
#include "fsync/testing/corpus.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

Bytes FilledPayload(size_t size, uint8_t tag) {
  // The (i >> 12) term keeps consecutive 4 KiB dedup blocks distinct —
  // tag + i * 131 alone repeats with period 256, which divides the block
  // size, so every block of a payload would self-dedup.
  Bytes b(size);
  for (size_t i = 0; i < size; ++i) {
    b[i] = static_cast<uint8_t>(tag + i * 131 + (i >> 12) * 57);
  }
  return b;
}

cache::CacheKey KeyN(uint64_t n) {
  std::array<uint8_t, 16> fp{};
  fp[0] = static_cast<uint8_t>(n);
  fp[1] = static_cast<uint8_t>(n >> 8);
  return cache::ContentKey(fp, n);
}

TEST(DedupStore, RoundTripsAndRefcounts) {
  cache::DedupStore store;
  Bytes payload = FilledPayload(10000, 7);  // spans multiple 4K blocks
  cache::BlockRef ref = store.Insert(payload);
  EXPECT_EQ(ref.size, payload.size());
  EXPECT_EQ(store.Materialize(ref), payload);
  EXPECT_EQ(store.stored_bytes(), payload.size());

  // The same bytes under a second reference cost nothing extra.
  cache::BlockRef ref2 = store.Insert(payload);
  EXPECT_EQ(store.stored_bytes(), payload.size());
  EXPECT_EQ(store.dedup_bytes_saved(), payload.size());

  store.Release(ref);
  EXPECT_EQ(store.Materialize(ref2), payload);  // still referenced
  store.Release(ref2);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.stored_blocks(), 0u);
}

TEST(DedupStore, SharedBlocksAcrossDifferentPayloads) {
  cache::DedupStore store;
  // Two payloads sharing their (block-aligned) first 8 KiB.
  Bytes a = FilledPayload(12 * 1024, 3);
  Bytes b = a;
  for (size_t i = 8 * 1024; i < b.size(); ++i) {
    b[i] ^= 0xFF;
  }
  cache::BlockRef ra = store.Insert(a);
  cache::BlockRef rb = store.Insert(b);
  EXPECT_EQ(store.dedup_bytes_saved(), 8 * 1024u);
  EXPECT_EQ(store.Materialize(ra), a);
  EXPECT_EQ(store.Materialize(rb), b);
}

TEST(SyncCache, HitReturnsPayloadMetaAndComputeNs) {
  cache::SyncCache cache;
  Bytes payload = FilledPayload(600, 1);
  cache::SyncCache::Meta meta{1, 22, 333, 4444};
  EXPECT_FALSE(cache.Get(KeyN(1)).has_value());
  cache.Put(KeyN(1), payload, meta, /*compute_ns=*/777);

  auto hit = cache.Get(KeyN(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload, payload);
  EXPECT_EQ(hit->meta, meta);
  EXPECT_EQ(hit->compute_ns, 777u);

  cache::CacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.bytes_saved, payload.size());
  EXPECT_EQ(s.cpu_saved_ns, 777u);
}

TEST(SyncCache, ObserverSeesCacheEvents) {
  cache::SyncCache cache;
  obs::SyncObserver obs;
  Bytes payload = FilledPayload(256, 9);
  EXPECT_FALSE(cache.Get(KeyN(5), &obs).has_value());
  cache.Put(KeyN(5), payload, {}, 1000, &obs);
  EXPECT_TRUE(cache.Get(KeyN(5), &obs).has_value());
  EXPECT_EQ(obs.event_count(obs::Event::kCacheMiss), 1u);
  EXPECT_EQ(obs.event_count(obs::Event::kCacheHit), 1u);
  EXPECT_EQ(obs.event_count(obs::Event::kCacheBytesSaved), payload.size());
  EXPECT_EQ(obs.event_count(obs::Event::kCacheCpuSavedNs), 1000u);
}

TEST(SyncCache, LruEvictionUnderTightBudget) {
  // Budget fits roughly three 8 KiB entries (plus per-entry overhead).
  cache::SyncCache cache(/*max_bytes=*/3 * 9 * 1024);
  obs::SyncObserver obs;
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Put(KeyN(i), FilledPayload(8 * 1024, static_cast<uint8_t>(i)),
              {}, 0, &obs);
  }
  cache::CacheStats s = cache.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes_used, cache.max_bytes());
  EXPECT_LT(s.entries, 8u);
  EXPECT_EQ(obs.event_count(obs::Event::kCacheEviction), s.evictions);
  // Strict LRU: the oldest entries are gone, the newest survive.
  EXPECT_FALSE(cache.Get(KeyN(0)).has_value());
  EXPECT_TRUE(cache.Get(KeyN(7)).has_value());
}

TEST(SyncCache, LruRecencyRefreshOnGet) {
  cache::SyncCache cache(/*max_bytes=*/3 * 9 * 1024);
  cache.Put(KeyN(0), FilledPayload(8 * 1024, 0), {}, 0);
  cache.Put(KeyN(1), FilledPayload(8 * 1024, 1), {}, 0);
  cache.Put(KeyN(2), FilledPayload(8 * 1024, 2), {}, 0);
  // Touch the oldest, then overflow: the untouched middle entry goes.
  EXPECT_TRUE(cache.Get(KeyN(0)).has_value());
  cache.Put(KeyN(3), FilledPayload(8 * 1024, 3), {}, 0);
  EXPECT_TRUE(cache.Get(KeyN(0)).has_value());
  EXPECT_FALSE(cache.Get(KeyN(1)).has_value());
}

TEST(SyncCache, IdenticalPayloadsDedupAcrossEntries) {
  cache::SyncCache cache;
  Bytes payload = FilledPayload(16 * 1024, 42);
  cache.Put(KeyN(1), payload, {}, 0);
  cache.Put(KeyN(2), payload, {}, 0);  // different key, same bytes
  cache::CacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.dedup_bytes_saved, payload.size());
  ASSERT_TRUE(cache.Get(KeyN(1)).has_value());
  ASSERT_TRUE(cache.Get(KeyN(2)).has_value());
}

TEST(SyncCache, KeyDomainsNeverCollide) {
  std::array<uint8_t, 16> fp{};
  fp[3] = 7;
  cache::SyncCache cache;
  cache.Put(cache::SignatureKey(fp, 1, 2), FilledPayload(64, 1));
  cache.Put(cache::ContentKey(fp, 1), FilledPayload(64, 2));
  cache.Put(cache::TranscriptKey(fp, 2, 1, 0), FilledPayload(64, 3));
  cache.Put(cache::DeltaKey(fp, fp, 2), FilledPayload(64, 4));
  EXPECT_EQ(cache.Stats().entries, 4u);
  EXPECT_EQ(cache.Get(cache::SignatureKey(fp, 1, 2))->payload,
            FilledPayload(64, 1));
  EXPECT_EQ(cache.Get(cache::ContentKey(fp, 1))->payload,
            FilledPayload(64, 2));
}

// --- Session-level behavior -------------------------------------------

FileSyncResult MustSync(ByteSpan f_old, ByteSpan f_new,
                        const SyncConfig& config, cache::SyncCache* cache,
                        obs::SyncObserver* obs = nullptr) {
  SimulatedChannel channel;
  auto r = SynchronizeFile(f_old, f_new, config, channel, obs, cache);
  EXPECT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->reconstructed, Bytes(f_new.begin(), f_new.end()));
  return std::move(r).value();
}

TEST(SessionCache, FanOutServesRepeatsFromCache) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, 11);
  SyncConfig config;
  cache::SyncCache cache;
  MustSync(pair.f_old, pair.f_new, config, &cache);
  cache::CacheStats cold = cache.Stats();
  EXPECT_GT(cold.insertions, 0u);
  EXPECT_EQ(cold.hits, 0u);

  obs::SyncObserver obs;
  FileSyncResult warm =
      MustSync(pair.f_old, pair.f_new, config, &cache, &obs);
  cache::CacheStats stats = cache.Stats();
  // Every server response of the repeat session came from the cache.
  EXPECT_EQ(stats.misses, cold.misses);
  EXPECT_EQ(stats.insertions, cold.insertions);
  EXPECT_EQ(stats.hits, cold.insertions);
  EXPECT_EQ(obs.event_count(obs::Event::kCacheHit), cold.insertions);
  EXPECT_GT(obs.event_count(obs::Event::kCacheBytesSaved), 0u);
  // The warm session's live server compute collapses to (at most) the
  // replay machinery; it must not re-run signature/delta computation.
  EXPECT_GT(warm.delta_bytes, 0u);
}

TEST(SessionCache, ConfigDigestMismatchBypassesEntries) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kDispersedEdits, 13);
  SyncConfig a;
  SyncConfig b;
  b.start_block_size = a.start_block_size * 2;  // wire-affecting change
  ASSERT_NE(ConfigWireDigest(a), ConfigWireDigest(b));

  cache::SyncCache cache;
  MustSync(pair.f_old, pair.f_new, a, &cache);
  cache::CacheStats after_a = cache.Stats();
  MustSync(pair.f_old, pair.f_new, b, &cache);
  cache::CacheStats after_b = cache.Stats();
  // The config-B session found nothing reusable: zero new hits, only new
  // insertions under the new digest (old entries were never served).
  EXPECT_EQ(after_b.hits, after_a.hits);
  EXPECT_GT(after_b.insertions, after_a.insertions);
}

TEST(SessionCache, StaleEntriesInvalidatedByContentChange) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kClusteredEdits, 17);
  SyncConfig config;
  cache::SyncCache cache;
  MustSync(pair.f_old, pair.f_new, config, &cache);
  cache::CacheStats warm = cache.Stats();

  // The server file changes (next crawl): its fingerprint changes, so
  // every key derived from the old content is simply never looked up
  // again — the new sync must be all misses and still correct.
  Bytes changed = pair.f_new;
  changed[changed.size() / 2] ^= 0x5A;
  ASSERT_NE(FileFingerprint(changed), FileFingerprint(pair.f_new));
  MustSync(pair.f_old, changed, config, &cache);
  cache::CacheStats after = cache.Stats();
  EXPECT_EQ(after.hits, warm.hits);
  EXPECT_GT(after.insertions, warm.insertions);

  // The unchanged pair's entries still serve.
  MustSync(pair.f_old, pair.f_new, config, &cache);
  EXPECT_GT(cache.Stats().hits, after.hits);
}

TEST(SessionCache, TightBudgetStaysCorrectUnderEviction) {
  // A budget far below one session's working set: every session thrashes
  // the cache, but results and wire behavior must stay correct.
  cache::SyncCache cache(/*max_bytes=*/2 * 1024);
  SyncConfig config;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CorpusPair pair = MakeCorpusPair(CorpusShape::kBlockMove, seed);
    MustSync(pair.f_old, pair.f_new, config, &cache);
    MustSync(pair.f_old, pair.f_new, config, &cache);
  }
  cache::CacheStats s = cache.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes_used, cache.max_bytes());
}

TEST(SessionCache, ConcurrentSessionsShareOneCache) {
  // Many clients, one cache, in parallel (the fan-out deployment shape);
  // TSAN runs this via the `par` label. Mixed pairs make some threads
  // insert while others hit.
  constexpr int kThreads = 8;
  std::vector<CorpusPair> pairs;
  pairs.push_back(MakeCorpusPair(CorpusShape::kClusteredEdits, 23));
  pairs.push_back(MakeCorpusPair(CorpusShape::kDispersedEdits, 23));
  SyncConfig config;
  cache::SyncCache cache;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        const CorpusPair& pair = pairs[(t + rep) % pairs.size()];
        SimulatedChannel channel;
        auto r = SynchronizeFile(pair.f_old, pair.f_new, config, channel,
                                 nullptr, &cache);
        if (!r.ok() || r->reconstructed != pair.f_new) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  cache::CacheStats s = cache.Stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.insertions, 0u);
}

// --- Broadcast and collection paths -----------------------------------

TEST(BroadcastCache, CastAndDeltaMemoized) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kWebPageEdit, 31);
  HashCastConfig config;
  cache::SyncCache cache;

  auto cast1 = BuildHashCastCached(pair.f_new, config, &cache);
  auto cast2 = BuildHashCastCached(pair.f_new, config, &cache);
  ASSERT_TRUE(cast1.ok() && cast2.ok());
  EXPECT_EQ(*cast1, *cast2);
  auto uncached = BuildHashCast(pair.f_new, config);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(*cast1, *uncached);
  EXPECT_EQ(cache.Stats().hits, 1u);

  auto map = ApplyHashCast(pair.f_old, *cast1);
  ASSERT_TRUE(map.ok());
  Bytes request = EncodeCastRequest(*map);
  auto delta1 = MakeCastDeltaCached(pair.f_new, request, config, &cache);
  auto delta2 = MakeCastDeltaCached(pair.f_new, request, config, &cache);
  auto delta_ref = MakeCastDelta(pair.f_new, request, config);
  ASSERT_TRUE(delta1.ok() && delta2.ok() && delta_ref.ok());
  EXPECT_EQ(*delta1, *delta2);
  EXPECT_EQ(*delta1, *delta_ref);
  EXPECT_EQ(cache.Stats().hits, 2u);

  auto got = ApplyCastDelta(pair.f_old, *map, *delta1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pair.f_new);
}

TEST(CollectionCache, TreeDriverSharesCacheAcrossClients) {
  // Two "clients" with the same outdated tree sync against one server
  // snapshot through one shared cache: the second sync's sessions and
  // small-file bundle are served from it.
  Collection server;
  CorpusPair big1 = MakeCorpusPair(CorpusShape::kClusteredEdits, 41);
  CorpusPair big2 = MakeCorpusPair(CorpusShape::kBlockMove, 43);
  Collection client;
  client["src/a.cc"] = big1.f_old;
  client["src/b.cc"] = big2.f_old;
  client["docs/readme"] = ToBytes("old small file\n");
  server["src/a.cc"] = big1.f_new;
  server["src/b.cc"] = big2.f_new;
  server["docs/readme"] = ToBytes("new small file contents\n");

  cache::SyncCache cache;
  TreeSyncParams params;
  params.cache = &cache;
  for (int client_no = 0; client_no < 2; ++client_no) {
    SimulatedChannel channel;
    auto r = SyncCollectionTree(client, server, params, channel);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r->reconstructed, server);
  }
  cache::CacheStats s = cache.Stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.bytes_saved, 0u);
}

TEST(CollectionCache, BatchedDriverSharesCacheAcrossClients) {
  CorpusPair pair = MakeCorpusPair(CorpusShape::kDispersedEdits, 47);
  Collection client{{"f", pair.f_old}};
  Collection server{{"f", pair.f_new}};
  cache::SyncCache cache;
  SyncConfig config;
  for (int client_no = 0; client_no < 2; ++client_no) {
    SimulatedChannel channel;
    auto r = SyncCollectionBatched(client, server, config, channel,
                                   nullptr, &cache);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r->reconstructed, server);
  }
  EXPECT_GT(cache.Stats().hits, 0u);
}

}  // namespace
}  // namespace fsx
