// Second-layer property tests: reference-model equivalence and
// statistical quality checks that pin down behaviour the round-trip
// tests cannot see (bit-exact layouts, entropy optimality margins,
// false-positive rates).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_set>

#include "fsync/cdc/cdc_sync.h"
#include "fsync/compress/huffman.h"
#include "fsync/hash/gear.h"
#include "fsync/hash/rolling_adler.h"
#include "fsync/hash/tabled_adler.h"
#include "fsync/multiround/multiround.h"
#include "fsync/util/bit_io.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

// Effective base seed for the randomized suites below; FSX_SEED=<n>
// replays a failing run exactly. Failure messages print the derived seed.
uint64_t BaseSeed() {
  static const uint64_t kBase = SeedFromEnv(0);
  return kBase;
}

// --- Rolling hashes vs. from-scratch recomputation ----------------------
//
// The weak-hash scan loops only ever see rolled values, so a roll/
// recompute divergence is silent corruption: blocks stop matching and
// the protocols quietly transfer everything literally. Pin, for every
// rolling hash (classic Adler, tabled Adler, GEAR), that sliding to a
// random offset equals hashing the window from scratch — random window
// sizes, random offsets, random data, FSX_SEED replays.

class RollingHashModel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RollingHashModel, RollEqualsRecomputeAtRandomOffsets) {
  const uint64_t seed = BaseSeed() + GetParam() * 1000003;
  Rng rng(seed);
  const std::string trace = "replay with FSX_SEED=" + std::to_string(seed);
  const size_t n = 2048 + rng.Uniform(8192);
  Bytes data = rng.RandomBytes(n);
  // Window sizes spanning the removal-term regimes: tiny, around the
  // GEAR 64-byte horizon, and protocol-typical block sizes.
  const size_t window = 1 + rng.Uniform(std::min<size_t>(n - 1, 4096));

  RollingAdler classic(ByteSpan(data.data(), window));
  TabledAdlerWindow tabled(ByteSpan(data.data(), window));
  GearWindow gear(ByteSpan(data.data(), window));
  size_t pos = 0;
  for (int hop = 0; hop < 64 && pos + window < n; ++hop) {
    // Random stride, so checks land at uncorrelated offsets.
    size_t stride = 1 + rng.Uniform(64);
    for (size_t s = 0; s < stride && pos + window < n; ++s, ++pos) {
      classic.Roll(data[pos], data[pos + window]);
      tabled.Roll(data[pos], data[pos + window]);
      gear.Roll(data[pos], data[pos + window]);
    }
    ByteSpan at(data.data() + pos, window);
    EXPECT_EQ(classic.value(), RollingAdler(at).value())
        << "classic adler, window " << window << " pos " << pos << "; "
        << trace;
    AdlerPair fresh = TabledAdler::Hash(at);
    EXPECT_TRUE(tabled.pair().a == fresh.a && tabled.pair().b == fresh.b)
        << "tabled adler, window " << window << " pos " << pos << "; "
        << trace;
    EXPECT_EQ(gear.value(), Gear::Hash(at))
        << "gear, window " << window << " pos " << pos << "; " << trace;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, RollingHashModel,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

// --- Bit I/O vs. a vector<bool> reference model -------------------------

class BitIoModel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitIoModel, MatchesReferenceBitVector) {
  const uint64_t seed = BaseSeed() + GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  struct Op {
    uint64_t value;
    int bits;
  };
  std::vector<Op> ops;
  std::vector<bool> model;
  BitWriter w;
  int n_ops = 1 + static_cast<int>(rng.Uniform(200));
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.bits = 1 + static_cast<int>(rng.Uniform(64));
    op.value = rng.Next();
    if (op.bits < 64) {
      op.value &= (uint64_t{1} << op.bits) - 1;
    }
    ops.push_back(op);
    w.WriteBits(op.value, op.bits);
    for (int b = 0; b < op.bits; ++b) {
      model.push_back((op.value >> b) & 1);
    }
  }
  Bytes buf = w.Finish();
  // The buffer's bits must equal the model (padded with zeros).
  ASSERT_GE(buf.size() * 8, model.size());
  for (size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ((buf[i / 8] >> (i % 8)) & 1, model[i] ? 1 : 0) << i;
  }
  // And reading must return the original fields.
  BitReader r(buf);
  for (const Op& op : ops) {
    auto got = r.ReadBits(op.bits);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, op.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoModel,
                         ::testing::Range<uint64_t>(0, 20));

// --- Huffman optimality ---------------------------------------------------

TEST(HuffmanQuality, WithinHalfBitOfEntropy) {
  // Huffman is within 1 bit/symbol of entropy in the worst case; for the
  // smooth Zipf-ish distributions we feed it, expect much closer. The
  // weighted code length must also never beat entropy (sanity).
  Rng rng(1);
  std::vector<uint64_t> freqs(200);
  uint64_t total = 0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    freqs[i] = 1 + 100000 / (i + 1);  // Zipf
    total += freqs[i];
  }
  std::vector<uint8_t> lens = BuildCodeLengths(freqs, 15);
  double entropy = 0;
  double avg_len = 0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    double p = static_cast<double>(freqs[i]) / total;
    entropy += -p * std::log2(p);
    avg_len += p * lens[i];
  }
  EXPECT_GE(avg_len, entropy - 1e-9);
  EXPECT_LE(avg_len, entropy + 0.5);
}

TEST(HuffmanQuality, LengthLimitCostsLittle) {
  // Limiting to 9 bits on a 200-symbol Zipf alphabet must cost only a
  // few percent versus the 15-bit code (package-merge is optimal under
  // the limit, so this also guards against regressions to heuristics).
  Rng rng(2);
  std::vector<uint64_t> freqs(200);
  uint64_t total = 0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    freqs[i] = 1 + 100000 / (i + 1);
    total += freqs[i];
  }
  auto weighted = [&](const std::vector<uint8_t>& lens) {
    double sum = 0;
    for (size_t i = 0; i < freqs.size(); ++i) {
      sum += static_cast<double>(freqs[i]) * lens[i];
    }
    return sum;
  };
  double free_len = weighted(BuildCodeLengths(freqs, 15));
  double limited = weighted(BuildCodeLengths(freqs, 9));
  EXPECT_LE(limited, free_len * 1.05);
}

// --- Tabled-Adler statistical quality -------------------------------------

TEST(TabledAdlerQuality, FalsePositiveRateNearTheoretical) {
  // Compare 10k random 64-byte block pairs at 16 truncated bits: the
  // collision rate must be within 3x of 2^-16 (i.e. behave like a real
  // hash, unlike the raw Adler whose sums are biased).
  SCOPED_TRACE("seed=" + std::to_string(BaseSeed() + 3));
  Rng rng(BaseSeed() + 3);
  const int kBits = 16;
  const int kTrials = 20000;
  int collisions = 0;
  for (int i = 0; i < kTrials; ++i) {
    Bytes a = rng.RandomBytes(64);
    Bytes b = rng.RandomBytes(64);
    collisions += TabledAdler::Truncate(TabledAdler::Hash(a), kBits) ==
                  TabledAdler::Truncate(TabledAdler::Hash(b), kBits);
  }
  double expect = kTrials / 65536.0;  // ~0.3
  EXPECT_LE(collisions, expect * 3 + 5);
}

TEST(TabledAdlerQuality, TextBlocksSpreadAcrossBuckets) {
  // Low-entropy text must still fill the truncated hash space; the raw
  // Adler 'a'-sum concentrates badly here.
  SCOPED_TRACE("seed=" + std::to_string(BaseSeed() + 4));
  Rng rng(BaseSeed() + 4);
  Bytes text = SynthSourceFile(rng, 300000);
  const int kBits = 12;
  std::vector<int> buckets(1 << kBits, 0);
  int n = 0;
  for (size_t off = 0; off + 64 <= text.size(); off += 64) {
    ++buckets[TabledAdler::Truncate(
        TabledAdler::Hash(ByteSpan(text).subspan(off, 64)), kBits)];
    ++n;
  }
  int used = 0;
  int max_bucket = 0;
  for (int c : buckets) {
    used += c > 0;
    max_bucket = std::max(max_bucket, c);
  }
  // With ~4700 samples into 4096 buckets, expect most buckets reachable
  // and no pathological pileup.
  EXPECT_GT(used, 2000);
  EXPECT_LT(max_bucket, 40);
}

// --- Tamper robustness for the auxiliary protocols -------------------------

template <typename SyncFn>
void TamperLoop(SyncFn&& sync, const Bytes& f_old, const Bytes& f_new) {
  for (uint64_t i = 0; i < 15; ++i) {
    const uint64_t seed = BaseSeed() + i;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng trng(seed);
    uint64_t target_msg = trng.Uniform(6);
    uint64_t count = 0;
    SimulatedChannel channel;
    channel.SetTamper([&](SimulatedChannel::Direction, Bytes& msg) {
      if (count++ == target_msg && !msg.empty()) {
        msg[trng.Uniform(msg.size())] ^=
            static_cast<uint8_t>(1 + trng.Uniform(255));
      }
    });
    sync(channel, seed);
    (void)f_old;
    (void)f_new;
  }
}

TEST(TamperRobustness, CdcNeverCrashesOrLies) {
  Rng rng(BaseSeed() + 5);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  CdcSyncParams params;
  TamperLoop(
      [&](SimulatedChannel& channel, uint64_t seed) {
        auto r = CdcSynchronize(f_old, f_new, params, channel);
        if (r.ok()) {
          EXPECT_EQ(r->reconstructed, f_new) << "seed=" << seed;
        }
      },
      f_old, f_new);
}

TEST(TamperRobustness, MultiroundNeverCrashesOrLies) {
  Rng rng(BaseSeed() + 6);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  MultiroundParams params;
  TamperLoop(
      [&](SimulatedChannel& channel, uint64_t seed) {
        auto r = MultiroundSynchronize(f_old, f_new, params, channel);
        if (r.ok()) {
          EXPECT_EQ(r->reconstructed, f_new) << "seed=" << seed;
        }
      },
      f_old, f_new);
}

}  // namespace
}  // namespace fsx
