// Socket-level chaos for the sync daemon: deterministic fault plans
// (short reads/writes, spurious would-blocks, torn frames, mid-session
// resets) driven through the client's injector against a live daemon.
// The invariants under every plan: the daemon never wedges or leaks
// sessions, a failed client never corrupts its replica (it either gets
// the exact server tree or a clean error), and a clean retry after any
// fault converges — resuming from checkpoints when the failure left
// them behind. Labeled `net;chaos` in CTest.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fsync/netd/client.h"
#include "fsync/netd/daemon.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/store/apply.h"
#include "fsync/store/fsstore.h"
#include "fsync/store/vfs.h"
#include "fsync/store/vfs_fault.h"
#include "fsync/util/random.h"
#include "fsync/workload/tree.h"

namespace fsx::netd {
namespace {

Collection ServerTree(uint64_t seed) {
  TreeChurnProfile profile = ReleaseTreeProfile(30);
  profile.seed = seed;
  profile.max_file_bytes = 16 * 1024;  // enough rounds to interrupt
  return MakeTreeWorkload(profile).new_tree;
}

Collection StaleTree(uint64_t seed) {
  TreeChurnProfile profile = ReleaseTreeProfile(30);
  profile.seed = seed;
  profile.max_file_bytes = 16 * 1024;
  return MakeTreeWorkload(profile).old_tree;
}

// Runs one faulty client followed by one clean retry and asserts the
// chaos invariants. Returns true when the faulty run itself succeeded.
bool RunPlanAgainstDaemon(SyncDaemon& daemon, const Collection& server_tree,
                          const Collection& stale, const FaultPlan& plan,
                          const std::string& checkpoint_dir) {
  ClientOptions faulty;
  faulty.port = daemon.port();
  faulty.fault = plan;
  faulty.checkpoint_dir = checkpoint_dir;
  faulty.io_timeout_ms = 5000;
  auto first = RunSyncClient(stale, faulty);
  if (first.ok()) {
    // Faults may still let the run through (short I/O, stalls); then
    // the replica must be exact.
    EXPECT_EQ(first->reconstructed, server_tree);
  }

  // Whatever happened, a clean client must converge afterwards: the
  // daemon survived the faulty peer with no wedged or leaked state.
  ClientOptions clean;
  clean.port = daemon.port();
  clean.checkpoint_dir = checkpoint_dir;
  clean.io_timeout_ms = 5000;
  auto retry = RunSyncClient(stale, clean);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  if (retry.ok()) {
    EXPECT_EQ(retry->reconstructed, server_tree);
  }
  return first.ok();
}

TEST(DaemonChaos, SurvivesShortIoAndStalls) {
  const uint64_t seed = SeedFromEnv(0xC4A0);
  Collection server_tree = ServerTree(seed);
  Collection stale = StaleTree(seed);
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  for (uint64_t fault_seed = 1; fault_seed <= 4; ++fault_seed) {
    FaultPlan plan;
    plan.seed = fault_seed;
    plan.short_read = 0.3;
    plan.short_write = 0.3;
    plan.stall = 0.2;
    // Short/stalled I/O changes timing, never content: these runs must
    // all succeed outright.
    EXPECT_TRUE(RunPlanAgainstDaemon(daemon, server_tree, stale, plan, ""))
        << "fault seed " << fault_seed;
  }
  daemon.Stop();
  daemon.Join();
  DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.sessions_opened, stats.sessions_completed);
}

TEST(DaemonChaos, TornFramesNeverCorruptTheReplica) {
  const uint64_t seed = SeedFromEnv(0xC4A1);
  Collection server_tree = ServerTree(seed);
  Collection stale = StaleTree(seed);
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  for (uint64_t fault_seed = 1; fault_seed <= 4; ++fault_seed) {
    FaultPlan plan;
    plan.seed = fault_seed;
    plan.torn_frame = 0.05;
    // Torn frames are CRC-caught on either side; success or clean
    // failure are both acceptable, silent corruption is not (checked
    // inside the helper).
    RunPlanAgainstDaemon(daemon, server_tree, stale, plan, "");
  }
  daemon.Stop();
  daemon.Join();
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(DaemonChaos, MidSessionResetsThenRetrySucceeds) {
  const uint64_t seed = SeedFromEnv(0xC4A2);
  Collection server_tree = ServerTree(seed);
  Collection stale = StaleTree(seed);
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  // Kill the connection at escalating depths into the transfer — from
  // mid-handshake to mid-session — and require a clean retry each time.
  for (uint64_t cut : {64u, 1024u, 8u * 1024u, 64u * 1024u}) {
    FaultPlan plan;
    plan.seed = cut;
    plan.reset_after_bytes = cut;
    bool ok = RunPlanAgainstDaemon(daemon, server_tree, stale, plan, "");
    EXPECT_FALSE(ok && cut < 128) << "a 64-byte budget cannot finish";
  }
  daemon.Stop();
  daemon.Join();
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(DaemonChaos, KilledClientResumesFromCheckpoints) {
  // A client killed mid-session leaves checkpoints behind; the retry
  // must pick them up (resume path over the daemon protocol) and still
  // produce the exact tree.
  const uint64_t seed = SeedFromEnv(0xC4A3);
  TreeChurnProfile profile = ReleaseTreeProfile(6);
  profile.seed = seed;
  profile.min_file_bytes = 96 * 1024;  // multi-round sessions
  profile.max_file_bytes = 256 * 1024;
  profile.frac_unchanged = 0.0;
  profile.frac_edited = 0.9;
  profile.frac_renamed = 0.0;
  profile.frac_deleted = 0.0;
  TreePair pair = MakeTreeWorkload(profile);
  SyncDaemon daemon(pair.new_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  const std::string ckpt_dir =
      ::testing::TempDir() + "/fsx-netd-chaos-ckpt";
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);

  // Probe a clean run to learn the total byte traffic, then sweep cut
  // depths as fractions of it: some fraction must land after at least
  // one completed round (checkpoints exist) but before the sync ends.
  uint64_t total_traffic = 0;
  {
    ClientOptions probe;
    probe.port = daemon.port();
    auto probed = RunSyncClient(pair.old_tree, probe);
    ASSERT_TRUE(probed.ok()) << probed.status().ToString();
    total_traffic =
        probed->physical_bytes_sent + probed->physical_bytes_received;
    ASSERT_GT(total_traffic, 0u);
  }
  // The traffic is front-loaded (the first round-trip burst carries the
  // bulk of the bytes; the multi-round tail is thin), so walk the cut
  // backwards from just under the total in fine steps: the window where
  // rounds have completed but the sync hasn't lives in that tail.
  bool resumed_run_seen = false;
  for (uint64_t back = 256; back < total_traffic && !resumed_run_seen;
       back += 256) {
    const uint64_t cut = total_traffic - back;
    ClientOptions faulty;
    faulty.port = daemon.port();
    faulty.checkpoint_dir = ckpt_dir;
    faulty.fault.seed = cut;
    faulty.fault.reset_after_bytes = cut;
    faulty.io_timeout_ms = 5000;
    auto first = RunSyncClient(pair.old_tree, faulty);
    if (first.ok()) {
      continue;  // stream interleaving let this run finish; cut lower
    }
    bool have_checkpoint = false;
    for (const auto& entry :
         std::filesystem::directory_iterator(ckpt_dir)) {
      have_checkpoint |= entry.path().extension() == ".ckpt";
    }
    if (!have_checkpoint) {
      continue;  // died before round 1 completed; cut deeper
    }
    ClientOptions clean;
    clean.port = daemon.port();
    clean.checkpoint_dir = ckpt_dir;
    clean.io_timeout_ms = 5000;
    auto retry = RunSyncClient(pair.old_tree, clean);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    EXPECT_EQ(retry->reconstructed, pair.new_tree);
    EXPECT_GE(retry->files_resumed, 1u);
    resumed_run_seen = true;
  }
  EXPECT_TRUE(resumed_run_seen)
      << "no cut depth produced a resumable interruption";
  daemon.Stop();
  daemon.Join();
  EXPECT_EQ(daemon.stats().open_connections, 0u);
  std::filesystem::remove_all(ckpt_dir);
}

TEST(DaemonChaos, DrainUnderLoadLeavesNoWedgedClients) {
  // Drain while a herd of clients is mid-sync: every client must end —
  // with a full replica or a clean drain-time abort — and the daemon's
  // loop must exit by itself within the drain deadline.
  const uint64_t seed = SeedFromEnv(0xC4A4);
  Collection server_tree = ServerTree(seed);
  Collection stale = StaleTree(seed);
  DaemonOptions options;
  options.drain_deadline_us = 5'000'000;
  SyncDaemon daemon(server_tree, options);
  ASSERT_TRUE(daemon.Start().ok());

  constexpr int kClients = 8;
  std::vector<StatusOr<ClientResult>> results(
      kClients, Status::Internal("not run"));
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientOptions opts;
      opts.port = daemon.port();
      opts.io_timeout_ms = 10000;
      results[i] = RunSyncClient(stale, opts);
    });
  }
  daemon.Drain();
  for (std::thread& t : threads) {
    t.join();
  }
  daemon.Join();  // must return: drain bounds the shutdown

  int full = 0, aborted = 0;
  for (int i = 0; i < kClients; ++i) {
    if (!results[i].ok()) {
      ++aborted;  // refused at connect/handshake during drain: clean
      continue;
    }
    if (results[i]->files_aborted > 0) {
      ++aborted;
      // Partial run: everything that did complete must be exact.
      for (const auto& [path, data] : results[i]->reconstructed) {
        auto it = server_tree.find(path);
        ASSERT_NE(it, server_tree.end()) << path;
        EXPECT_EQ(it->second, data) << path;
      }
    } else {
      EXPECT_EQ(results[i]->reconstructed, server_tree) << "client " << i;
      ++full;
    }
  }
  EXPECT_EQ(full + aborted, kClients);
  EXPECT_EQ(daemon.stats().open_connections, 0u);
}

TEST(DaemonChaos, DiskFullOnOneClientDoesNotDisturbTheOthers) {
  // 16 clients sync from the daemon concurrently and apply the result
  // to their own replica dirs. One replica sits on a "full disk"
  // (injected ENOSPC scoped to its path): that apply must abort with a
  // typed RESOURCE_EXHAUSTED and roll back to per-file old-or-new,
  // while the other 15 applies land bit-identical. Once space "frees
  // up" (the fault is disarmed), the victim's retry converges too.
  const uint64_t seed = SeedFromEnv(0xC4A5);
  Collection server_tree = ServerTree(seed);
  Collection stale = StaleTree(seed);
  SyncDaemon daemon(server_tree, DaemonOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  const std::string base = ::testing::TempDir() + "/fsx-netd-diskfault";
  std::filesystem::remove_all(base);
  constexpr int kClients = 16;
  std::vector<std::string> dirs;
  dirs.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    dirs.push_back(base + "/client-" + std::to_string(i));
    ASSERT_TRUE(StoreTree(dirs[i], stale, /*delete_extra=*/true,
                          /*write_manifest=*/true)
                    .ok());
  }
  const Manifest stale_manifest = BuildManifest(stale);

  // Arm the full disk only after the stale replicas exist: the byte
  // budget throttles just the applies under test, and only under
  // client 0's root (the trailing '/' keeps "client-1x" out).
  store::FaultVfs fault_vfs;
  store::DiskFaultRule rule;
  rule.path_pattern = "client-0/";
  rule.enospc_after_bytes = 256;
  fault_vfs.AddRule(rule);

  std::vector<Status> apply_status(kClients, Status::Internal("not run"));
  std::vector<obs::SyncObserver> observers(kClients);
  {
    store::ScopedVfs scoped(&fault_vfs);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        ClientOptions opts;
        opts.port = daemon.port();
        opts.io_timeout_ms = 10000;
        auto synced = RunSyncClient(stale, opts);
        if (!synced.ok()) {
          apply_status[i] = synced.status();
          return;
        }
        EXPECT_EQ(synced->reconstructed, server_tree) << "client " << i;
        auto report =
            store::ApplyTree(dirs[i], synced->reconstructed,
                             stale_manifest, {}, &observers[i]);
        apply_status[i] = report.ok() ? Status::Ok() : report.status();
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  // The victim: typed disk-full, an enospc_aborts event, and a replica
  // where every file is bit-exact old or new — never torn.
  EXPECT_EQ(apply_status[0].code(), StatusCode::kResourceExhausted)
      << apply_status[0].ToString();
  EXPECT_GE(observers[0].event_count(obs::Event::kEnospcAbort), 1u);
  auto victim = LoadTree(dirs[0]);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  for (const auto& [path, data] : *victim) {
    auto old_it = stale.find(path);
    auto new_it = server_tree.find(path);
    EXPECT_TRUE((old_it != stale.end() && old_it->second == data) ||
                (new_it != server_tree.end() && new_it->second == data))
        << path << " is neither the old nor the new content";
  }

  // The bystanders: clean applies, bit-identical replicas.
  for (int i = 1; i < kClients; ++i) {
    ASSERT_TRUE(apply_status[i].ok())
        << "client " << i << ": " << apply_status[i].ToString();
    auto tree = LoadTree(dirs[i]);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ(*tree, server_tree) << "client " << i;
  }

  // Disk-full cleared: recovery plus a fresh sync+apply must converge.
  {
    auto rec = store::RecoverTree(dirs[0]);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ClientOptions opts;
    opts.port = daemon.port();
    opts.io_timeout_ms = 10000;
    auto synced = RunSyncClient(stale, opts);
    ASSERT_TRUE(synced.ok()) << synced.status().ToString();
    auto report = store::ApplyTree(dirs[0], synced->reconstructed,
                                   stale_manifest, {});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto tree = LoadTree(dirs[0]);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ(*tree, server_tree);
  }

  daemon.Stop();
  daemon.Join();
  EXPECT_EQ(daemon.stats().open_connections, 0u);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace fsx::netd
