#include <gtest/gtest.h>

#include <algorithm>

#include "fsync/rsync/rsync.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

RsyncResult MustRsync(const Bytes& f_old, const Bytes& f_new,
                      const RsyncParams& params) {
  SimulatedChannel channel;
  auto r = RsyncSynchronize(f_old, f_new, params, channel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, f_new);
  return std::move(*r);
}

TEST(RsyncSignatures, EncodeDecodeRoundTrip) {
  Rng rng(1);
  Bytes f = rng.RandomBytes(10000);
  RsyncParams params;
  params.block_size = 512;
  std::vector<BlockSignature> sigs = ComputeSignatures(f, params);
  EXPECT_EQ(sigs.size(), 10000u / 512);
  Bytes wire = EncodeSignatures(sigs, params);
  auto back = DecodeSignatures(wire, params);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), sigs.size());
  for (size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ((*back)[i].weak, sigs[i].weak);
    EXPECT_EQ((*back)[i].strong, sigs[i].strong);
  }
}

TEST(Rsync, IdenticalFilesDetectedUnchanged) {
  Rng rng(2);
  Bytes f = SynthSourceFile(rng, 30000);
  RsyncParams params;
  RsyncResult r = MustRsync(f, f, params);
  EXPECT_LT(r.stats.total_bytes(), 64u);
}

TEST(Rsync, SmallEditReconstructs) {
  Rng rng(3);
  Bytes f_old = SynthSourceFile(rng, 50000);
  EditProfile ep;
  ep.num_edits = 4;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  RsyncParams params;
  RsyncResult r = MustRsync(f_old, f_new, params);
  EXPECT_FALSE(r.fell_back_to_full_transfer);
  // Much cheaper than the raw file.
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 2);
}

TEST(Rsync, HandlesShiftedContent) {
  // Insertion destroys block alignment; the rolling checksum must still
  // match blocks at arbitrary offsets.
  Rng rng(4);
  Bytes f_old = SynthSourceFile(rng, 40000);
  Bytes f_new = f_old;
  Bytes ins = ToBytes("xx");
  f_new.insert(f_new.begin() + 33, ins.begin(), ins.end());
  RsyncParams params;
  params.block_size = 700;
  RsyncResult r = MustRsync(f_old, f_new, params);
  // Roughly: signatures (6B/block) + small literal region + indices.
  uint64_t sig_cost = (f_old.size() / 700) * 6;
  EXPECT_LT(r.stats.total_bytes(), sig_cost + 3500);
}

TEST(Rsync, EmptyOldFile) {
  Rng rng(5);
  Bytes f_new = SynthSourceFile(rng, 20000);
  RsyncParams params;
  RsyncResult r = MustRsync({}, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);
}

TEST(Rsync, EmptyNewFile) {
  Rng rng(6);
  Bytes f_old = SynthSourceFile(rng, 20000);
  RsyncParams params;
  RsyncResult r = MustRsync(f_old, {}, params);
  EXPECT_TRUE(r.reconstructed.empty());
}

TEST(Rsync, FileSmallerThanBlockSize) {
  Bytes f_old = ToBytes("short old");
  Bytes f_new = ToBytes("short new content");
  RsyncParams params;
  params.block_size = 700;
  RsyncResult r = MustRsync(f_old, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);
}

TEST(Rsync, SingleByteFiles) {
  Bytes a = {0x41};
  Bytes b = {0x42};
  RsyncParams params;
  EXPECT_EQ(MustRsync(a, b, params).reconstructed, b);
  EXPECT_EQ(MustRsync(a, a, params).reconstructed, a);
}

TEST(Rsync, NonPowerOfTwoTail) {
  // File length deliberately not a multiple of the block size: the final
  // partial block has no signature, so it must travel as a literal while
  // the aligned prefix still matches.
  Rng rng(20);
  RsyncParams params;
  params.block_size = 512;
  Bytes f_old = SynthSourceFile(rng, 512 * 39 + 37);
  Bytes f_new = f_old;
  Bytes tail_edit = rng.RandomBytes(5);
  // Edit inside the ragged tail only.
  std::copy(tail_edit.begin(), tail_edit.end(), f_new.end() - 10);
  RsyncResult r = MustRsync(f_old, f_new, params);
  EXPECT_FALSE(r.fell_back_to_full_transfer);
  // The matched prefix keeps traffic near signature cost, far below the
  // file size.
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 4);
}

TEST(Rsync, TailShrinksAndGrowsAcrossOddSizes) {
  Rng rng(21);
  RsyncParams params;
  params.block_size = 700;
  for (size_t old_size : {size_t{699}, size_t{701}, size_t{700 * 3 + 1}}) {
    for (int delta : {-13, 0, +29}) {
      Bytes f_old = SynthSourceFile(rng, old_size);
      Bytes f_new = f_old;
      if (delta < 0) {
        f_new.resize(f_new.size() - static_cast<size_t>(-delta));
      } else if (delta > 0) {
        Bytes extra = rng.RandomBytes(static_cast<size_t>(delta));
        Append(f_new, extra);
      }
      EXPECT_EQ(MustRsync(f_old, f_new, params).reconstructed, f_new)
          << "old=" << old_size << " delta=" << delta;
    }
  }
}

class RsyncBlockSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RsyncBlockSizes, RoundTripAcrossBlockSizes) {
  Rng rng(7);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  ep.num_edits = 12;
  ep.locality = 0.2;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  RsyncParams params;
  params.block_size = GetParam();
  RsyncResult r = MustRsync(f_old, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RsyncBlockSizes,
                         ::testing::Values(16, 64, 100, 256, 700, 2048,
                                           8192));

TEST(Rsync, UncompressedStreamAlsoWorks) {
  Rng rng(8);
  Bytes f_old = SynthSourceFile(rng, 20000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  RsyncParams params;
  params.compress_stream = false;
  RsyncResult r = MustRsync(f_old, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);
}

TEST(Rsync, BestBlockSizeBeatsDefaultOnFavorableInput) {
  // Lightly-edited large file: bigger blocks reduce signature traffic.
  Rng rng(9);
  Bytes f_old = SynthSourceFile(rng, 120000);
  EditProfile ep;
  ep.num_edits = 2;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  RsyncParams params;
  auto best = RsyncBestBlockSize(f_old, f_new, params);
  ASSERT_TRUE(best.ok());
  RsyncResult def = MustRsync(f_old, f_new, params);
  EXPECT_LE(best->stats.total_bytes(), def.stats.total_bytes());
  EXPECT_EQ(best->reconstructed, f_new);
}

TEST(Rsync, BlockSizeTradeoffExists) {
  // With dispersed edits, very large blocks match nothing and very small
  // blocks cost too many signatures; the sweep must not be monotone.
  Rng rng(10);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 60;
  ep.locality = 0.0;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  auto cost = [&](uint32_t block) {
    RsyncParams p;
    p.block_size = block;
    return MustRsync(f_old, f_new, p).stats.total_bytes();
  };
  uint64_t tiny = cost(16);
  uint64_t mid = cost(512);
  uint64_t huge = cost(16384);
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

TEST(Rsync, StrongBytesWidthConfigurable) {
  Rng rng(11);
  Bytes f_old = SynthSourceFile(rng, 20000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  for (uint32_t sb : {1u, 2u, 4u, 8u}) {
    RsyncParams params;
    params.strong_bytes = sb;
    RsyncResult r = MustRsync(f_old, f_new, params);
    EXPECT_EQ(r.reconstructed, f_new) << "strong_bytes=" << sb;
  }
}

}  // namespace
}  // namespace fsx
