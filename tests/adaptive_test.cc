#include <gtest/gtest.h>

#include "fsync/core/adaptive.h"
#include "fsync/core/session.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

TEST(Adaptive, SmallFilesGetSmallStartBlocks) {
  SyncConfig small = ChooseConfig(4096, 4096);
  SyncConfig large = ChooseConfig(1 << 20, 1 << 20);
  EXPECT_LT(small.start_block_size, large.start_block_size);
  EXPECT_LE(small.min_block_size, large.min_block_size);
}

TEST(Adaptive, StartBlockIsPowerOfTwo) {
  for (uint64_t size : {100ull, 5000ull, 123456ull, 10000000ull}) {
    SyncConfig c = ChooseConfig(size, size);
    EXPECT_EQ(c.start_block_size & (c.start_block_size - 1), 0u) << size;
  }
}

TEST(Adaptive, HighLatencyCapsRoundtrips) {
  AdaptiveHints satellite;
  satellite.roundtrip_latency_sec = 1.0;
  satellite.bandwidth_bytes_per_sec = 1 << 20;
  SyncConfig c = ChooseConfig(32 * 1024, 32 * 1024, satellite);
  EXPECT_GT(c.max_roundtrips, 0);
  EXPECT_LE(c.max_roundtrips, 4);

  AdaptiveHints lan;
  lan.roundtrip_latency_sec = 0.001;
  lan.bandwidth_bytes_per_sec = 1 << 20;
  SyncConfig c2 = ChooseConfig(32 * 1024, 32 * 1024, lan);
  EXPECT_EQ(c2.max_roundtrips, 0);
}

TEST(Adaptive, AsymmetricUplinkShiftsCostDownstream) {
  AdaptiveHints adsl;
  adsl.roundtrip_latency_sec = 0.001;
  adsl.bandwidth_bytes_per_sec = 1 << 20;
  adsl.upstream_bytes_per_sec = 1 << 16;  // 16x slower up
  SyncConfig c = ChooseConfig(200000, 200000, adsl);
  SyncConfig sym = ChooseConfig(200000, 200000);
  EXPECT_GT(c.verify.group_size, sym.verify.group_size);
  EXPECT_GT(c.global_extra_bits, sym.global_extra_bits);

  // And the asymmetric config must actually reduce uplink bytes.
  Rng rng(20);
  Bytes f_old = SynthSourceFile(rng, 150000);
  EditProfile ep;
  ep.num_edits = 20;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SimulatedChannel ch1, ch2;
  auto r_sym = SynchronizeFile(f_old, f_new, sym, ch1);
  auto r_asym = SynchronizeFile(f_old, f_new, c, ch2);
  ASSERT_TRUE(r_sym.ok());
  ASSERT_TRUE(r_asym.ok());
  EXPECT_EQ(r_asym->reconstructed, f_new);
  EXPECT_LT(r_asym->stats.client_to_server_bytes,
            r_sym->stats.client_to_server_bytes);
}

TEST(Adaptive, RefinementReactsToSimilarity) {
  SyncConfig base = ChooseConfig(100000, 100000);
  SyncConfig similar = RefineConfig(base, 0.95);
  SyncConfig dissimilar = RefineConfig(base, 0.1);
  EXPECT_GT(similar.verify.group_size, dissimilar.verify.group_size);
  EXPECT_GE(dissimilar.min_block_size, base.min_block_size);
  EXPECT_NE(dissimilar.max_roundtrips, 0);
}

TEST(Adaptive, SimilarityEstimateOrdersPairsCorrectly) {
  Rng rng(1);
  Bytes base = SynthSourceFile(rng, 50000);
  EditProfile light;
  light.num_edits = 2;
  Bytes lightly = ApplyEdits(base, light, rng);
  Bytes unrelated = rng.RandomBytes(50000);

  double s_same = EstimateSimilarity(base, base);
  double s_light = EstimateSimilarity(base, lightly);
  double s_diff = EstimateSimilarity(base, unrelated);
  EXPECT_DOUBLE_EQ(s_same, 1.0);
  EXPECT_GT(s_light, 0.5);
  EXPECT_GT(s_light, s_diff);
  EXPECT_LT(s_diff, 0.05);
}

TEST(Adaptive, SimilarityEdgeCases) {
  Bytes small = ToBytes("tiny");
  EXPECT_DOUBLE_EQ(EstimateSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(EstimateSimilarity(small, {}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateSimilarity(small, small), 1.0);
}

TEST(Adaptive, ChosenConfigSynchronizesCorrectly) {
  Rng rng(2);
  for (size_t size : {500u, 20000u, 200000u}) {
    Bytes f_old = SynthSourceFile(rng, size);
    EditProfile ep;
    ep.num_edits = 6;
    Bytes f_new = ApplyEdits(f_old, ep, rng);
    SyncConfig config = ChooseConfig(f_old.size(), f_new.size());
    SimulatedChannel channel;
    auto r = SynchronizeFile(f_old, f_new, config, channel);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->reconstructed, f_new) << "size=" << size;
  }
}

}  // namespace
}  // namespace fsx
