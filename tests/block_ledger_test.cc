#include <gtest/gtest.h>

#include "fsync/core/block_ledger.h"

namespace fsx {
namespace {

SyncConfig BasicConfig() {
  SyncConfig c;
  c.start_block_size = 1024;
  c.min_block_size = 64;
  c.min_continuation_block = 16;
  return c;
}

TEST(BlockLedger, InitialPartitionCoversFile) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(4096 + 100, 4096, c);
  ASSERT_EQ(ledger.active().size(), 5u);
  uint64_t expected_off = 0;
  for (size_t id : ledger.active()) {
    const Block& b = ledger.block(id);
    EXPECT_EQ(b.offset, expected_off);
    expected_off += b.size;
  }
  EXPECT_EQ(expected_off, 4196u);
  EXPECT_EQ(ledger.block(ledger.active().back()).size, 100u);
}

TEST(BlockLedger, EmptyFileHasNoBlocks) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(0, 100, c);
  EXPECT_TRUE(ledger.active().empty());
}

TEST(BlockLedger, PlanSkipsBlocksLargerThanOldFile) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(2048, 100, c);  // old file is tiny
  RoundPlan plan = ledger.BuildPlan();
  EXPECT_TRUE(plan.sent_global.empty());
  EXPECT_EQ(plan.skipped.size(), 2u);
}

TEST(BlockLedger, SplittingHalvesUnmatchedBlocks) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(2048, 100000, c);
  ASSERT_EQ(ledger.active().size(), 2u);
  EXPECT_TRUE(ledger.AdvanceRound());
  EXPECT_EQ(ledger.active().size(), 4u);
  for (size_t id : ledger.active()) {
    EXPECT_EQ(ledger.block(id).size, 512u);
  }
}

TEST(BlockLedger, RetiresAtMinBlockSize) {
  SyncConfig c = BasicConfig();
  c.use_continuation = false;
  BlockLedger ledger(1024, 100000, c);
  // 1024 -> 512 -> 256 -> 128 -> 64; splitting 64 would go below min.
  int rounds = 0;
  while (ledger.AdvanceRound()) {
    ++rounds;
  }
  EXPECT_EQ(rounds, 4);
}

TEST(BlockLedger, ConfirmedBlocksStopSplitting) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(2048, 100000, c);
  ledger.Confirm(ledger.active()[0], 777);
  EXPECT_TRUE(ledger.AdvanceRound());
  // Only the second block splits.
  EXPECT_EQ(ledger.active().size(), 2u);
  auto ranges = ledger.ConfirmedRanges();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 1024u);
  EXPECT_EQ(ranges[0].src, 777u);
  EXPECT_DOUBLE_EQ(ledger.ConfirmedFraction(), 0.5);
}

TEST(BlockLedger, AdjacencyDrivesContinuationPlan) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(3072, 100000, c);
  ledger.Confirm(ledger.active()[0], 0);  // [0, 1024) confirmed
  ASSERT_TRUE(ledger.AdvanceRound());
  RoundPlan plan = ledger.BuildPlan();
  // The left child of block [1024, 2048) touches the confirmed range.
  ASSERT_FALSE(plan.continuation.empty());
  const Block& cont = ledger.block(plan.continuation[0]);
  EXPECT_EQ(cont.offset, 1024u);
}

TEST(BlockLedger, DecomposablePairsSiblingsAfterParentHashKnown) {
  SyncConfig c = BasicConfig();
  c.use_continuation = false;
  BlockLedger ledger(1024, 100000, c);
  // Round 1: one block, hash sent.
  RoundPlan p1 = ledger.BuildPlan();
  ASSERT_EQ(p1.sent_global.size(), 1u);
  ledger.block(p1.sent_global[0]).pair_known = true;
  ASSERT_TRUE(ledger.AdvanceRound());
  RoundPlan p2 = ledger.BuildPlan();
  EXPECT_EQ(p2.sent_global.size(), 1u);
  EXPECT_EQ(p2.derived.size(), 1u);
  EXPECT_TRUE(ledger.block(p2.derived[0]).parent ==
              static_cast<int64_t>(p1.sent_global[0]));
}

TEST(BlockLedger, NoDerivationWithoutParentPair) {
  SyncConfig c = BasicConfig();
  c.use_continuation = false;
  BlockLedger ledger(1024, 100000, c);
  RoundPlan p1 = ledger.BuildPlan();
  // Parent hash never marked known (e.g. decomposable disabled upstream).
  ASSERT_TRUE(ledger.AdvanceRound());
  RoundPlan p2 = ledger.BuildPlan();
  EXPECT_EQ(p2.sent_global.size(), 2u);
  EXPECT_TRUE(p2.derived.empty());
  (void)p1;
}

TEST(BlockLedger, DecomposableDisabledSendsBoth) {
  SyncConfig c = BasicConfig();
  c.use_continuation = false;
  c.use_decomposable = false;
  BlockLedger ledger(1024, 100000, c);
  RoundPlan p1 = ledger.BuildPlan();
  ledger.block(p1.sent_global[0]).pair_known = true;
  ASSERT_TRUE(ledger.AdvanceRound());
  RoundPlan p2 = ledger.BuildPlan();
  EXPECT_EQ(p2.sent_global.size(), 2u);
  EXPECT_TRUE(p2.derived.empty());
}

TEST(BlockLedger, AdjacentUnconfirmedBlockKeepsSplittingForContinuation) {
  SyncConfig c = BasicConfig();
  c.start_block_size = 128;
  c.min_block_size = 128;  // non-adjacent blocks retire immediately
  c.min_continuation_block = 16;
  BlockLedger ledger(256, 100000, c);
  ASSERT_EQ(ledger.active().size(), 2u);
  ledger.Confirm(ledger.active()[0], 0);
  // The second block abuts the confirmation, so the continuation limit
  // (16) applies and it splits instead of retiring.
  ASSERT_TRUE(ledger.AdvanceRound());
  ASSERT_EQ(ledger.active().size(), 2u);
  RoundPlan plan = ledger.BuildPlan();
  ASSERT_EQ(plan.continuation.size(), 1u);
  EXPECT_EQ(ledger.block(plan.continuation[0]).offset, 128u);
}

TEST(BlockLedger, ReactivatesRetiredNeighborsOfNewConfirmations) {
  SyncConfig c = BasicConfig();
  c.start_block_size = 128;
  c.min_block_size = 128;  // unconfirmed non-adjacent blocks retire
  c.min_continuation_block = 64;
  BlockLedger ledger(384, 100000, c);  // blocks A, B, C
  ASSERT_EQ(ledger.active().size(), 3u);
  size_t block_b = ledger.active()[1];
  size_t block_c = ledger.active()[2];
  // Round 1: only A confirms. B abuts it (splits); C is isolated and
  // retires untouched (no probe spent).
  ledger.Confirm(ledger.active()[0], 0);
  ASSERT_TRUE(ledger.AdvanceRound());
  EXPECT_EQ(ledger.block(block_c).status, BlockStatus::kRetired);
  // Round 2: both B-children confirm, so confirmed coverage now reaches
  // C's left edge; C must be reactivated for continuation probing.
  for (size_t id : ledger.active()) {
    ledger.Confirm(id, ledger.block(id).offset);
  }
  ASSERT_TRUE(ledger.AdvanceRound());
  ASSERT_EQ(ledger.active().size(), 1u);
  EXPECT_EQ(ledger.active()[0], block_c);
  RoundPlan plan = ledger.BuildPlan();
  ASSERT_EQ(plan.continuation.size(), 1u);
  // Spent probes prevent endless retire/reactivate cycles: with every
  // probe failing, the recursion must bottom out in a bounded number of
  // rounds.
  int guard = 0;
  do {
    ledger.MarkPlanned(ledger.BuildPlan());
    ASSERT_LT(++guard, 20) << "ledger failed to terminate";
  } while (ledger.AdvanceRound());
  (void)block_b;
}

TEST(BlockLedger, ConfirmedLookupsExactTouch) {
  SyncConfig c = BasicConfig();
  BlockLedger ledger(4096, 100000, c);
  ledger.Confirm(ledger.active()[1], 50);  // [1024, 2048)
  EXPECT_TRUE(ledger.ConfirmedEndingAt(2048).has_value());
  EXPECT_FALSE(ledger.ConfirmedEndingAt(2047).has_value());
  EXPECT_TRUE(ledger.ConfirmedStartingAt(1024).has_value());
  EXPECT_FALSE(ledger.ConfirmedStartingAt(1025).has_value());
  EXPECT_EQ(ledger.ConfirmedEndingAt(2048)->src, 50u);
}

TEST(VerifyGroups, GroupingRespectsSizesAndKinds) {
  SyncConfig c = BasicConfig();
  c.verify.group_size = 4;
  c.verify.continuation_group_size = 2;
  c.verify.adaptive_groups = false;
  BlockLedger ledger(8192, 100000, c);
  std::vector<size_t> ids(ledger.active().begin(), ledger.active().end());
  ASSERT_EQ(ids.size(), 8u);
  // First 3 are continuation candidates, rest global.
  std::vector<bool> cont = {true, true, true, false, false,
                            false, false, false};
  auto groups = ledger.BuildGroups(ids, cont, c.verify);
  ASSERT_EQ(groups.size(), 4u);  // 2+1 continuation, 4+1 global
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[1].members.size(), 1u);
  EXPECT_EQ(groups[2].members.size(), 4u);
  EXPECT_EQ(groups[3].members.size(), 1u);
}

TEST(VerifyGroups, SplitGroupsHalves) {
  VerifyGroup g;
  g.members = {1, 2, 3, 4, 5};
  auto split = SplitGroups({g});
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].members.size(), 2u);
  EXPECT_EQ(split[1].members.size(), 3u);

  VerifyGroup single;
  single.members = {9};
  auto same = SplitGroups({single});
  ASSERT_EQ(same.size(), 1u);
  EXPECT_EQ(same[0].members, single.members);
}

}  // namespace
}  // namespace fsx
