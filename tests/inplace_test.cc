#include <gtest/gtest.h>

#include "fsync/rsync/inplace.h"
#include "fsync/rsync/rsync.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

ReconstructCommand Copy(uint64_t src, uint64_t len, uint64_t dst) {
  ReconstructCommand c;
  c.kind = ReconstructCommand::kCopy;
  c.source_offset = src;
  c.length = len;
  c.target_offset = dst;
  return c;
}

ReconstructCommand Lit(const std::string& s, uint64_t dst) {
  ReconstructCommand c;
  c.kind = ReconstructCommand::kLiteral;
  c.literal = ToBytes(s);
  c.target_offset = dst;
  return c;
}

TEST(InPlace, IdentityCopy) {
  Bytes old_file = ToBytes("hello world");
  auto r = InPlaceReconstruct(old_file, {Copy(0, 11, 0)}, 11);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, old_file);
  EXPECT_EQ(r->promoted_commands, 0u);
}

TEST(InPlace, SwapTwoBlocksRequiresPromotion) {
  // new = old[4..8) ++ old[0..4): a 2-cycle that ordering cannot solve.
  Bytes old_file = ToBytes("AAAABBBB");
  auto r = InPlaceReconstruct(old_file, {Copy(4, 4, 0), Copy(0, 4, 4)}, 8);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, ToBytes("BBBBAAAA"));
  EXPECT_GE(r->promoted_commands, 1u);
  EXPECT_LE(r->promoted_literal_bytes, 4u);  // promotes the cheaper copy
}

TEST(InPlace, ShiftRightOrdersCorrectly) {
  // new = "xx" ++ old: every copy reads bytes its own write would clobber
  // if executed naively left-to-right; ordering (or backward copy) fixes
  // it without promotion.
  Bytes old_file = ToBytes("abcdefgh");
  std::vector<ReconstructCommand> cmds = {Lit("xx", 0), Copy(0, 8, 2)};
  auto r = InPlaceReconstruct(old_file, cmds, 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, ToBytes("xxabcdefgh"));
}

TEST(InPlace, LiteralOverwritingCopySource) {
  // The literal at [0,4) destroys the source of the copy; the copy must
  // execute first.
  Bytes old_file = ToBytes("SRCDATA!");
  std::vector<ReconstructCommand> cmds = {Lit("LITE", 0), Copy(0, 4, 4)};
  auto r = InPlaceReconstruct(old_file, cmds, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reconstructed, ToBytes("LITESRCD"));
  EXPECT_EQ(r->promoted_commands, 0u);
}

TEST(InPlace, RejectsBadTiling) {
  Bytes old_file = ToBytes("abcd");
  // Gap at [2,4).
  auto r = InPlaceReconstruct(old_file, {Copy(0, 2, 0)}, 4);
  EXPECT_FALSE(r.ok());
  // Overlap.
  auto r2 =
      InPlaceReconstruct(old_file, {Copy(0, 3, 0), Copy(0, 3, 2)}, 5);
  EXPECT_FALSE(r2.ok());
  // Source out of range.
  auto r3 = InPlaceReconstruct(old_file, {Copy(10, 2, 0)}, 2);
  EXPECT_FALSE(r3.ok());
}

TEST(InPlace, RandomizedPermutationsReconstruct) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t block = 16;
    const size_t nblocks = 2 + rng.Uniform(24);
    Bytes old_file = rng.RandomBytes(block * nblocks);

    // New file = random permutation of old blocks + occasional literals.
    std::vector<ReconstructCommand> cmds;
    Bytes expected;
    uint64_t dst = 0;
    for (size_t i = 0; i < nblocks; ++i) {
      if (rng.Bernoulli(0.2)) {
        Bytes lit = rng.RandomBytes(block);
        ReconstructCommand c;
        c.kind = ReconstructCommand::kLiteral;
        c.literal = lit;
        c.target_offset = dst;
        cmds.push_back(c);
        Append(expected, lit);
      } else {
        size_t src_block = rng.Uniform(nblocks);
        cmds.push_back(Copy(src_block * block, block, dst));
        Append(expected, ByteSpan(old_file).subspan(src_block * block,
                                                    block));
      }
      dst += block;
    }
    auto r = InPlaceReconstruct(old_file, cmds, dst);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->reconstructed, expected) << "trial " << trial;
  }
}

TEST(InPlace, PromotedBytesBoundedByNewSize) {
  Rng rng(43);
  const size_t block = 32;
  const size_t nblocks = 32;
  Bytes old_file = rng.RandomBytes(block * nblocks);
  // Full reversal: many cycles.
  std::vector<ReconstructCommand> cmds;
  for (size_t i = 0; i < nblocks; ++i) {
    cmds.push_back(
        Copy((nblocks - 1 - i) * block, block, i * block));
  }
  auto r = InPlaceReconstruct(old_file, cmds, block * nblocks);
  ASSERT_TRUE(r.ok());
  Bytes expected;
  for (size_t i = 0; i < nblocks; ++i) {
    Append(expected, ByteSpan(old_file).subspan((nblocks - 1 - i) * block,
                                                block));
  }
  EXPECT_EQ(r->reconstructed, expected);
  EXPECT_LT(r->promoted_literal_bytes, block * nblocks);
}

TEST(InPlaceRsync, TokenStreamToInPlaceReconstruction) {
  // End-to-end: run the rsync server encoder, decode the stream into an
  // explicit command list, and apply it in place ("in-place rsync").
  Rng rng(44);
  Bytes f_old = SynthSourceFile(rng, 60000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  RsyncParams params;
  params.block_size = 512;
  std::vector<BlockSignature> sigs = ComputeSignatures(f_old, params);
  Bytes stream = RsyncServerEncode(f_new, sigs, params);

  auto cmds = RsyncDecodeCommands(stream, params, f_old.size());
  ASSERT_TRUE(cmds.ok()) << cmds.status().ToString();
  EXPECT_EQ(cmds->new_size, f_new.size());

  auto r = InPlaceReconstruct(f_old, cmds->commands, cmds->new_size);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, f_new);
  // The promoted extra traffic must be a small fraction of the file.
  EXPECT_LT(r->promoted_literal_bytes, f_new.size() / 4);
}

TEST(InPlaceRsync, CommandListMatchesDirectApply) {
  Rng rng(45);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  ep.num_edits = 25;
  ep.locality = 0.1;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  RsyncParams params;
  params.block_size = 256;
  std::vector<BlockSignature> sigs = ComputeSignatures(f_old, params);
  Bytes stream = RsyncServerEncode(f_new, sigs, params);

  auto direct = RsyncClientApply(f_old, stream, params);
  ASSERT_TRUE(direct.ok());
  auto cmds = RsyncDecodeCommands(stream, params, f_old.size());
  ASSERT_TRUE(cmds.ok());
  Bytes rebuilt;
  for (const ReconstructCommand& c : cmds->commands) {
    if (c.kind == ReconstructCommand::kLiteral) {
      Append(rebuilt, c.literal);
    } else {
      Append(rebuilt, ByteSpan(f_old).subspan(c.source_offset, c.length));
    }
  }
  EXPECT_EQ(rebuilt, *direct);
  EXPECT_EQ(rebuilt, f_new);
}

TEST(InPlaceRsync, RejectsCorruptStream) {
  RsyncParams params;
  Bytes junk = {0x02, 0xFF, 0x00, 0x13};
  EXPECT_FALSE(RsyncDecodeCommands(junk, params, 100).ok());
  EXPECT_FALSE(RsyncDecodeCommands({}, params, 100).ok());
}

}  // namespace
}  // namespace fsx
