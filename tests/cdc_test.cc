#include <gtest/gtest.h>

#include "fsync/cdc/cdc_sync.h"
#include "fsync/cdc/chunker.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

TEST(Chunker, ChunksTileTheInput) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(100000);
  std::vector<Chunk> chunks = CdcChunk(data);
  uint64_t pos = 0;
  for (const Chunk& c : chunks) {
    EXPECT_EQ(c.offset, pos);
    EXPECT_GT(c.size, 0u);
    pos += c.size;
  }
  EXPECT_EQ(pos, data.size());
}

TEST(Chunker, RespectsSizeBounds) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(200000);
  CdcParams params;
  params.min_size = 512;
  params.max_size = 8192;
  std::vector<Chunk> chunks = CdcChunk(data, params);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be short
    EXPECT_GE(chunks[i].size, params.min_size);
    EXPECT_LE(chunks[i].size, params.max_size);
  }
}

TEST(Chunker, ExpectedSizeTracksMaskBits) {
  Rng rng(3);
  Bytes data = rng.RandomBytes(1 << 20);
  CdcParams small;
  small.mask_bits = 9;
  CdcParams large;
  large.mask_bits = 13;
  size_t n_small = CdcChunk(data, small).size();
  size_t n_large = CdcChunk(data, large).size();
  EXPECT_GT(n_small, n_large * 3);
}

TEST(Chunker, EmptyAndTinyInputs) {
  EXPECT_TRUE(CdcChunk({}).empty());
  Bytes tiny = ToBytes("abc");
  std::vector<Chunk> chunks = CdcChunk(tiny);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 3u);
}

TEST(Chunker, InsertionOnlyReChunksLocally) {
  // The defining CDC property: an edit changes O(1) chunk boundaries.
  Rng rng(4);
  Bytes base = rng.RandomBytes(300000);
  Bytes edited = base;
  Bytes ins = ToBytes("INSERTED CONTENT HERE");
  edited.insert(edited.begin() + 150000, ins.begin(), ins.end());

  auto hashes = [](const Bytes& data) {
    std::vector<std::pair<uint64_t, uint64_t>> out;  // (size, first bytes)
    for (const Chunk& c : CdcChunk(data)) {
      uint64_t head = 0;
      for (int i = 0; i < 8 && static_cast<uint64_t>(i) < c.size; ++i) {
        head = (head << 8) | data[c.offset + i];
      }
      out.push_back({c.size, head});
    }
    return out;
  };
  auto a = hashes(base);
  auto b = hashes(edited);
  // Count identical (size, head) chunk signatures present in both.
  std::multiset<std::pair<uint64_t, uint64_t>> sa(a.begin(), a.end());
  size_t shared = 0;
  for (const auto& x : b) {
    auto it = sa.find(x);
    if (it != sa.end()) {
      ++shared;
      sa.erase(it);
    }
  }
  // Nearly all chunks survive the insertion.
  EXPECT_GT(shared + 4, b.size());
}

CdcSyncResult MustCdcSync(const Bytes& f_old, const Bytes& f_new,
                          const CdcSyncParams& params) {
  SimulatedChannel channel;
  auto r = CdcSynchronize(f_old, f_new, params, channel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, f_new);
  return std::move(*r);
}

TEST(CdcSync, UnchangedFileIsCheap) {
  Rng rng(5);
  Bytes f = SynthSourceFile(rng, 50000);
  CdcSyncParams params;
  CdcSyncResult r = MustCdcSync(f, f, params);
  EXPECT_LT(r.stats.total_bytes(), 64u);
}

TEST(CdcSync, SmallEditTransfersFewChunks) {
  Rng rng(6);
  Bytes f_old = SynthSourceFile(rng, 200000);
  EditProfile ep;
  ep.num_edits = 3;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  CdcSyncParams params;
  CdcSyncResult r = MustCdcSync(f_old, f_new, params);
  EXPECT_LT(r.chunks_missing * 10, r.chunks_total);
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 4);
}

TEST(CdcSync, EmptyFiles) {
  Rng rng(7);
  Bytes f = SynthSourceFile(rng, 10000);
  CdcSyncParams params;
  CdcSyncResult a = MustCdcSync({}, f, params);
  EXPECT_EQ(a.reconstructed, f);
  CdcSyncResult b = MustCdcSync(f, {}, params);
  EXPECT_TRUE(b.reconstructed.empty());
}

class CdcFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdcFuzz, AlwaysReconstructs) {
  Rng rng(GetParam());
  Bytes f_old = SynthSourceFile(rng, 1 + rng.Uniform(60000));
  EditProfile ep;
  ep.num_edits = static_cast<int>(rng.Uniform(30));
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  CdcSyncParams params;
  params.chunking.mask_bits = 8 + static_cast<uint32_t>(rng.Uniform(5));
  params.chunking.min_size = 64 << rng.Uniform(3);
  params.hash_bytes = 2 + static_cast<uint32_t>(rng.Uniform(6));
  MustCdcSync(f_old, f_new, params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdcFuzz, ::testing::Range<uint64_t>(0, 20));

TEST(CdcSync, WeakHashesStillEndCorrect) {
  // 1-byte chunk hashes guarantee collisions on a large file; the
  // fingerprint check must detect the bad reassembly and fall back.
  Rng rng(8);
  Bytes f_old = SynthSourceFile(rng, 300000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  CdcSyncParams params;
  params.hash_bytes = 1;
  CdcSyncResult r = MustCdcSync(f_old, f_new, params);
  EXPECT_EQ(r.reconstructed, f_new);  // correctness regardless of fallback
}

}  // namespace
}  // namespace fsx
