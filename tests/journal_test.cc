// Write-ahead journal format tests: record round-trips, the framed
// on-disk encoding, torn-tail tolerance, and corruption detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "fsync/store/journal.h"
#include "fsync/util/random.h"

namespace fsx::store {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fsx_journal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "journal";
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  fs::path path_;
};

JournalRecord BeginRecord(ApplyMode mode, uint64_t old_size) {
  JournalRecord r;
  r.type = JournalRecordType::kBegin;
  r.mode = mode;
  r.old_size = old_size;
  return r;
}

JournalRecord IntentRecord(FileOp op, const std::string& path,
                           uint64_t size) {
  JournalRecord r;
  r.type = JournalRecordType::kFileIntent;
  r.op = op;
  r.path = path;
  r.size = size;
  for (size_t i = 0; i < r.fingerprint.size(); ++i) {
    r.fingerprint[i] = static_cast<uint8_t>(i * 7 + size);
  }
  return r;
}

JournalRecord MoveRecord(uint64_t offset, Bytes undo) {
  JournalRecord r;
  r.type = JournalRecordType::kBlockMove;
  r.target_offset = offset;
  r.undo = std::move(undo);
  return r;
}

JournalRecord BareRecord(JournalRecordType type) {
  JournalRecord r;
  r.type = type;
  return r;
}

TEST_F(JournalTest, EncodeDecodeRoundTripsEveryType) {
  Rng rng(7);
  std::vector<JournalRecord> records = {
      BeginRecord(ApplyMode::kTree, 0),
      BeginRecord(ApplyMode::kInPlace, 123456789),
      IntentRecord(FileOp::kWrite, "dir/file.txt", 42),
      IntentRecord(FileOp::kDelete, "gone.bin", 0),
      MoveRecord(8192, rng.RandomBytes(300)),
      MoveRecord(0, Bytes{}),
      BareRecord(JournalRecordType::kCommit),
      BareRecord(JournalRecordType::kAbort),
  };
  for (const JournalRecord& r : records) {
    Bytes payload = EncodeJournalRecord(r);
    auto back = DecodeJournalRecord(payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, r);
  }
}

TEST_F(JournalTest, DecodeRejectsTruncatedAndTrailing) {
  Bytes payload = EncodeJournalRecord(IntentRecord(FileOp::kWrite, "x", 9));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Bytes torn(payload.begin(), payload.begin() + cut);
    EXPECT_FALSE(DecodeJournalRecord(torn).ok()) << "cut=" << cut;
  }
  Bytes padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(DecodeJournalRecord(padded).ok());
  EXPECT_FALSE(DecodeJournalRecord(Bytes{99}).ok());  // unknown type
}

TEST_F(JournalTest, WriteReadRoundTrip) {
  std::vector<JournalRecord> records = {
      BeginRecord(ApplyMode::kTree, 0),
      IntentRecord(FileOp::kWrite, "a.txt", 100),
      IntentRecord(FileOp::kDelete, "b.txt", 0),
      BareRecord(JournalRecordType::kCommit),
  };
  {
    auto writer = JournalWriter::Create(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const JournalRecord& r : records) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  auto back = ReadJournal(path_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->records, records);
  EXPECT_TRUE(back->committed);
  EXPECT_FALSE(back->aborted);
  EXPECT_FALSE(back->torn_tail);
}

TEST_F(JournalTest, MissingJournalIsNotFound) {
  auto r = ReadJournal(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(JournalTest, BadMagicIsDataLoss) {
  std::ofstream(path_, std::ios::binary) << "GARBAGE";
  auto r = ReadJournal(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);

  std::ofstream(path_, std::ios::binary | std::ios::trunc) << "FSX";
  r = ReadJournal(path_);  // shorter than the magic
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(JournalTest, TornTailIsToleratedAtEveryCut) {
  std::vector<JournalRecord> records = {
      BeginRecord(ApplyMode::kTree, 0),
      IntentRecord(FileOp::kWrite, "a.txt", 100),
      BareRecord(JournalRecordType::kCommit),
  };
  {
    auto writer = JournalWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    for (const JournalRecord& r : records) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  Bytes full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Frame boundaries: cuts landing exactly between records read back as
  // a shorter-but-clean journal; every other cut must flag a torn tail.
  std::vector<size_t> boundaries = {6};
  for (const JournalRecord& r : records) {
    boundaries.push_back(boundaries.back() + 8 +
                         EncodeJournalRecord(r).size());
  }
  ASSERT_EQ(boundaries.back(), full.size());

  // Truncate at every byte past the magic: the reader must surface the
  // intact prefix and flag (not fail on) the torn remainder.
  for (size_t cut = 6; cut < full.size(); ++cut) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(full.data()),
                static_cast<std::streamsize>(cut));
    }
    auto r = ReadJournal(path_);
    ASSERT_TRUE(r.ok()) << "cut=" << cut;
    bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    EXPECT_EQ(r->torn_tail, !at_boundary) << "cut=" << cut;
    EXPECT_LT(r->records.size(), records.size());
    EXPECT_FALSE(r->committed) << "cut=" << cut;
    for (size_t i = 0; i < r->records.size(); ++i) {
      EXPECT_EQ(r->records[i], records[i]) << "cut=" << cut;
    }
  }
}

TEST_F(JournalTest, CorruptedRecordStopsTheReader) {
  {
    auto writer = JournalWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(BeginRecord(ApplyMode::kTree, 0)).ok());
    ASSERT_TRUE(
        writer->Append(IntentRecord(FileOp::kWrite, "a.txt", 100)).ok());
  }
  // Flip one byte inside the second record's payload: its CRC must
  // reject it, and the intact first record must survive.
  auto size = fs::file_size(path_);
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size) - 10);
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(size) - 10);
    c = static_cast<char>(c ^ 0xFF);
    f.write(&c, 1);
  }
  auto r = ReadJournal(path_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].type, JournalRecordType::kBegin);
  EXPECT_TRUE(r->torn_tail);
}

TEST_F(JournalTest, HugeDeclaredFrameLengthIsATornTailNotARead) {
  // A corrupt frame declaring a length near UINT32_MAX must stop the
  // reader as a torn tail — naive `pos + 4 + len + 4` bound checks wrap
  // on 32-bit size_t and turn this into an out-of-bounds read.
  {
    auto writer = JournalWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(BeginRecord(ApplyMode::kTree, 0)).ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    // 4-byte length 0xFFFFFFFF plus enough filler that the reader must
    // reject it via the length comparison, not the short-frame check.
    std::string frame = "\xFF\xFF\xFF\xFF";
    frame += std::string(16, 'x');
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  auto r = ReadJournal(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].type, JournalRecordType::kBegin);
  EXPECT_TRUE(r->torn_tail);
  EXPECT_FALSE(r->committed);
}

TEST_F(JournalTest, JournalFilePlausibleMatchesOnlyMagicPrefixes) {
  EXPECT_FALSE(JournalFilePlausible(path_));  // missing
  for (const char* ours : {"", "F", "FSX", "FSXJ1\n",
                           "FSXJ1\nplus arbitrary records"}) {
    std::ofstream(path_, std::ios::binary | std::ios::trunc) << ours;
    EXPECT_TRUE(JournalFilePlausible(path_)) << "content: " << ours;
  }
  for (const char* foreign :
       {"G", "my notes", "FSXJ2\n", "fsxj1\n", "GARBAGE LONGER THAN MAGIC"}) {
    std::ofstream(path_, std::ios::binary | std::ios::trunc) << foreign;
    EXPECT_FALSE(JournalFilePlausible(path_)) << "content: " << foreign;
  }
}

TEST_F(JournalTest, RemoveJournalIsIdempotent) {
  EXPECT_TRUE(RemoveJournal(path_).ok());  // missing is OK
  { ASSERT_TRUE(JournalWriter::Create(path_).ok()); }
  EXPECT_TRUE(RemoveJournal(path_).ok());
  EXPECT_FALSE(fs::exists(path_));
}

TEST(InternalArtifactTest, ClassifiesBookkeepingNames) {
  EXPECT_TRUE(IsInternalArtifact(".fsx-manifest"));
  EXPECT_TRUE(IsInternalArtifact(".fsx-journal"));
  EXPECT_TRUE(IsInternalArtifact("a.txt.fsx-tmp"));
  EXPECT_TRUE(IsInternalArtifact("a.txt.fsx-journal"));
  EXPECT_TRUE(IsInternalArtifact("dir/deep/.fsx-manifest"));
  EXPECT_TRUE(IsInternalArtifact("dir/b.bin.fsx-tmp"));

  EXPECT_FALSE(IsInternalArtifact("a.txt"));
  EXPECT_FALSE(IsInternalArtifact("fsx-tmp"));
  EXPECT_FALSE(IsInternalArtifact("dir/.fsx-manifest.txt"));
  EXPECT_FALSE(IsInternalArtifact(".fsx-journal/file"));
}

}  // namespace
}  // namespace fsx::store
