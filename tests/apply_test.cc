// Durable-apply behavior without crashes: transaction happy paths,
// concurrent-modification conflicts, recovery no-ops, and the journaled
// in-place file apply (including promotion accounting).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fsync/obs/sync_obs.h"
#include "fsync/store/apply.h"
#include "fsync/store/journal.h"
#include "fsync/util/random.h"

namespace fsx::store {
namespace {

namespace fs = std::filesystem;

class ApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_apply_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteRaw(const std::string& rel, const std::string& content) {
    fs::path p = fs::path(root_) / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p, std::ios::binary) << content;
  }

  std::string root_;
};

Collection SampleFiles() {
  Collection c;
  c["a.txt"] = ToBytes("alpha");
  c["dir/b.txt"] = ToBytes("bravo bravo");
  c["dir/deep/c.bin"] = ToBytes("charlie");
  return c;
}

Bytes FileBytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Bytes{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
}

TEST_F(ApplyTest, ApplyTreeWritesVerifiableTree) {
  Collection files = SampleFiles();
  obs::SyncObserver obs;
  auto report = ApplyTree(root_, files, Manifest{}, {}, &obs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->files_committed, files.size());
  EXPECT_EQ(report->files_unchanged, 0u);
  EXPECT_TRUE(report->conflicts.empty());
  EXPECT_FALSE(report->recovered);
  EXPECT_EQ(obs.event_count(obs::Event::kJournalCommit), 1u);
  EXPECT_EQ(obs.event_count(obs::Event::kConflictDetected), 0u);

  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, files);
  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  EXPECT_TRUE(dirty->empty());
  EXPECT_FALSE(fs::exists(fs::path(root_) / kJournalName));
}

TEST_F(ApplyTest, HostileManifestPathsAbortBeforeTouchingDisk) {
  // A manifest is wire data: a compromised or malicious server must not
  // be able to name its way out of the destination tree. The whole
  // apply aborts (not a per-file skip) and nothing lands outside root.
  const std::string outside_marker = root_ + "_outside_marker";
  fs::remove(outside_marker);
  for (const std::string evil :
       {"../escape", "/etc/fsx_apply_test", "dir/../../escape", "..",
        "a\\..\\b", "dir//double"}) {
    Collection files = SampleFiles();
    files[evil] = ToBytes("pwned");
    auto report = ApplyTree(root_, files, Manifest{});
    EXPECT_FALSE(report.ok()) << evil;
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument) << evil;
  }
  EXPECT_FALSE(fs::exists(outside_marker));
  EXPECT_FALSE(fs::exists(fs::path(root_).parent_path() / "escape"));
}

TEST_F(ApplyTest, UnchangedFilesAreSkippedNotRewritten) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  Manifest expected = BuildManifest(files);
  auto report = ApplyTree(root_, files, expected);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->files_committed, 0u);
  EXPECT_EQ(report->files_unchanged, files.size());
}

TEST_F(ApplyTest, DeleteExtraRespectsMirrorSemantics) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  Manifest expected = BuildManifest(files);
  Collection fewer = files;
  fewer.erase("dir/b.txt");
  auto report = ApplyTree(root_, fewer, expected);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->files_deleted, 1u);
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fewer);
}

TEST_F(ApplyTest, ConflictingOverwriteIsSkippedAndReported) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  Manifest expected = BuildManifest(files);

  // Someone edits a.txt behind the syncer's back.
  WriteRaw("a.txt", "locally edited");

  Collection next = files;
  next["a.txt"] = ToBytes("update from source");
  next["dir/b.txt"] = ToBytes("bravo v2");
  obs::SyncObserver obs;
  auto report = ApplyTree(root_, next, expected, {}, &obs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->conflicts.size(), 1u);
  EXPECT_EQ(report->conflicts[0], "a.txt");
  EXPECT_EQ(report->files_committed, 1u);  // dir/b.txt still applied
  EXPECT_EQ(obs.event_count(obs::Event::kConflictDetected), 1u);

  // The local edit survives; the rest of the tree is updated; the
  // manifest reflects what is actually on disk, so verify is clean.
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)["a.txt"], ToBytes("locally edited"));
  EXPECT_EQ((*back)["dir/b.txt"], ToBytes("bravo v2"));
  auto dirty = VerifyTree(root_);
  ASSERT_TRUE(dirty.ok());
  EXPECT_TRUE(dirty->empty());
}

TEST_F(ApplyTest, ConflictingDeleteIsSkipped) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  Manifest expected = BuildManifest(files);

  WriteRaw("dir/b.txt", "changed since scan");
  Collection fewer = files;
  fewer.erase("dir/b.txt");

  auto report = ApplyTree(root_, fewer, expected);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->conflicts.size(), 1u);
  EXPECT_EQ(report->conflicts[0], "dir/b.txt");
  EXPECT_EQ(report->files_deleted, 0u);
  EXPECT_TRUE(fs::exists(fs::path(root_) / "dir/b.txt"));
}

TEST_F(ApplyTest, FileAppearingMidApplyIsNotDeleted) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  Manifest expected = BuildManifest(files);

  // A file the syncer never saw appears; mirror deletion must not eat
  // it (expected_old is null for it).
  WriteRaw("surprise.txt", "appeared mid-apply");

  auto report = ApplyTree(root_, files, expected);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->conflicts.size(), 1u);
  EXPECT_EQ(report->conflicts[0], "surprise.txt");
  EXPECT_TRUE(fs::exists(fs::path(root_) / "surprise.txt"));
}

TEST_F(ApplyTest, RecoverTreeIsANoOpOnCleanTree) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  obs::SyncObserver obs;
  auto rec = RecoverTree(root_, &obs);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->had_journal);
  EXPECT_EQ(rec->rolled_back_files, 0u);
  EXPECT_EQ(rec->cleaned_temps, 0u);
  EXPECT_EQ(obs.event_count(obs::Event::kRecovery), 0u);
  auto rec2 = RecoverTree(root_ + "/no_such_dir");
  ASSERT_TRUE(rec2.ok());
  EXPECT_FALSE(rec2->had_journal);
}

TEST_F(ApplyTest, RecoverTreeSweepsStrandedTemps) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  WriteRaw("dir/b.txt.fsx-tmp", "torn staging debris");
  obs::SyncObserver obs;
  auto rec = RecoverTree(root_, &obs);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->cleaned_temps, 1u);
  EXPECT_FALSE(fs::exists(fs::path(root_) / "dir/b.txt.fsx-tmp"));
  EXPECT_EQ(obs.event_count(obs::Event::kRolledBackFile), 1u);
  // The debris never reached the content namespace.
  auto back = LoadTree(root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)["dir/b.txt"], ToBytes("bravo bravo"));
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(ApplyTest, RecoverTreeToleratesSymlinksInTree) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  // A legitimate symlink the strict LoadTree refuses, plus a leftover
  // uncommitted journal. Recovery must still converge (lenient manifest
  // rebuild) — otherwise the journal is never removed and every future
  // apply on this tree fails permanently.
  fs::create_symlink("a.txt", fs::path(root_) / "link.txt");
  {
    auto w = JournalWriter::Create(fs::path(root_) / kJournalName);
    ASSERT_TRUE(w.ok());
    JournalRecord begin;
    begin.type = JournalRecordType::kBegin;
    begin.mode = ApplyMode::kTree;
    ASSERT_TRUE(w->Append(begin).ok());
  }

  obs::SyncObserver obs;
  auto rec = RecoverTree(root_, &obs);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->had_journal);
  EXPECT_FALSE(fs::exists(fs::path(root_) / kJournalName));
  EXPECT_TRUE(fs::is_symlink(fs::path(root_) / "link.txt"));

  // A fresh apply (whose Begin recovers first) works again.
  auto report = ApplyTree(root_, files, BuildManifest(files));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}
#endif  // __unix__ || __APPLE__

TEST_F(ApplyTest, RecoveryLeavesForeignJournalSuffixedFilesAlone) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  // A pre-existing user file that merely ends in the journal suffix:
  // its content is not a journal (wrong magic), so recovery must not
  // treat it as a crashed journal and delete it.
  WriteRaw("notes.fsx-journal", "my notes, definitely not a journal");

  auto file_rec =
      RecoverInPlaceFile((fs::path(root_) / "notes").string());
  ASSERT_TRUE(file_rec.ok()) << file_rec.status().ToString();
  EXPECT_TRUE(file_rec->foreign);
  EXPECT_FALSE(file_rec->had_journal);

  auto rec = RecoverTree(root_);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->foreign_journals, 1u);
  EXPECT_EQ(FileBytes(fs::path(root_) / "notes.fsx-journal"),
            ToBytes("my notes, definitely not a journal"));
}

TEST_F(ApplyTest, RecoveryClearsJournalThatDiedAtCreation) {
  Collection files = SampleFiles();
  ASSERT_TRUE(ApplyTree(root_, files, Manifest{}).ok());
  // A journal torn mid-header (a magic prefix) really is ours: no
  // intent ever landed, so recovery just removes it.
  WriteRaw("a.txt.fsx-journal", "FSX");

  auto rec = RecoverTree(root_);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->inplace_recovered, 1u);
  EXPECT_EQ(rec->foreign_journals, 0u);
  EXPECT_FALSE(fs::exists(fs::path(root_) / "a.txt.fsx-journal"));
  EXPECT_EQ(FileBytes(fs::path(root_) / "a.txt"), ToBytes("alpha"));
}

TEST_F(ApplyTest, ApplyRejectsUnsafeAndReservedPaths) {
  ApplyTransaction txn(root_, {});
  ASSERT_TRUE(txn.Begin().ok());
  EXPECT_FALSE(txn.WriteFile("../escape", ToBytes("x"), nullptr).ok());
  EXPECT_FALSE(txn.WriteFile("/abs", ToBytes("x"), nullptr).ok());
  EXPECT_FALSE(txn.WriteFile(".fsx-manifest", ToBytes("x"), nullptr).ok());
  EXPECT_FALSE(txn.WriteFile("a.fsx-tmp", ToBytes("x"), nullptr).ok());
  EXPECT_FALSE(txn.WriteFile(".fsx-journal", ToBytes("x"), nullptr).ok());
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(ApplyTest, TransactionLifecycleIsEnforced) {
  ApplyTransaction txn(root_, {});
  EXPECT_EQ(txn.WriteFile("a", ToBytes("x"), nullptr).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(txn.Begin().ok());
  EXPECT_EQ(txn.Begin().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// In-place file apply
// ---------------------------------------------------------------------------

ReconstructCommand Copy(uint64_t src, uint64_t len, uint64_t dst) {
  ReconstructCommand c;
  c.kind = ReconstructCommand::kCopy;
  c.source_offset = src;
  c.length = len;
  c.target_offset = dst;
  return c;
}

ReconstructCommand Lit(const std::string& s, uint64_t dst) {
  ReconstructCommand c;
  c.kind = ReconstructCommand::kLiteral;
  c.literal = ToBytes(s);
  c.target_offset = dst;
  return c;
}

TEST_F(ApplyTest, InPlaceApplyRewritesFileOnDisk) {
  WriteRaw("f.bin", "AAAABBBB");
  fs::path p = fs::path(root_) / "f.bin";
  // New file: "BBBBAAAAxyz" — the two halves swap (a dependency cycle,
  // so one side gets promoted) plus a fresh literal tail.
  std::vector<ReconstructCommand> cmds = {
      Copy(4, 4, 0), Copy(0, 4, 4), Lit("xyz", 8)};
  obs::SyncObserver obs;
  auto r = InPlaceApplyFile(p.string(), cmds, 11, nullptr, &obs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(FileBytes(p), ToBytes("BBBBAAAAxyz"));
  EXPECT_GT(r->steps_executed, 0u);
  EXPECT_EQ(r->promoted_commands, 1u);  // cycle of two 4-byte copies
  EXPECT_EQ(r->promoted_literal_bytes, 4u);
  EXPECT_FALSE(fs::exists(p.string() + ".fsx-journal"));
  EXPECT_EQ(obs.event_count(obs::Event::kJournalCommit), 1u);
}

TEST_F(ApplyTest, InPlaceApplyShrinksAndGrows) {
  WriteRaw("f.bin", "0123456789");
  fs::path p = fs::path(root_) / "f.bin";
  // Shrink: keep the middle four bytes.
  auto r = InPlaceApplyFile(p.string(), {Copy(3, 4, 0)}, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(FileBytes(p), ToBytes("3456"));
  // Grow: double it with a literal suffix.
  auto r2 =
      InPlaceApplyFile(p.string(), {Copy(0, 4, 0), Lit("grow", 4)}, 8);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(FileBytes(p), ToBytes("3456grow"));
}

TEST_F(ApplyTest, InPlaceApplyChecksExpectedFingerprint) {
  WriteRaw("f.bin", "AAAABBBB");
  fs::path p = fs::path(root_) / "f.bin";
  Fingerprint wrong = FileFingerprint(ToBytes("something else"));
  obs::SyncObserver obs;
  auto r = InPlaceApplyFile(p.string(), {Copy(0, 8, 0)}, 8, &wrong, &obs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_EQ(FileBytes(p), ToBytes("AAAABBBB"));  // untouched
  EXPECT_EQ(obs.event_count(obs::Event::kConflictDetected), 1u);

  Fingerprint right = FileFingerprint(ToBytes("AAAABBBB"));
  auto r2 = InPlaceApplyFile(p.string(), {Copy(4, 4, 0)}, 4, &right, &obs);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(FileBytes(p), ToBytes("BBBB"));
}

TEST_F(ApplyTest, InPlaceApplyRequiresExistingFile) {
  fs::path p = fs::path(root_) / "missing.bin";
  fs::create_directories(root_);
  auto r = InPlaceApplyFile(p.string(), {Lit("new", 0)}, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ApplyTest, RecoverInPlaceFileIsANoOpWithoutJournal) {
  WriteRaw("f.bin", "stable");
  fs::path p = fs::path(root_) / "f.bin";
  auto r = RecoverInPlaceFile(p.string());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->had_journal);
  EXPECT_EQ(FileBytes(p), ToBytes("stable"));
}

TEST_F(ApplyTest, RecoverInPlaceRollsBackUncommittedJournal) {
  WriteRaw("f.bin", "AAAABBBB");
  fs::path p = fs::path(root_) / "f.bin";
  fs::path jp = fs::path(p.string() + ".fsx-journal");

  // Hand-craft a crashed half-apply: BEGIN + one undo image, then the
  // block move itself executed, but no COMMIT.
  {
    auto w = JournalWriter::Create(jp);
    ASSERT_TRUE(w.ok());
    JournalRecord begin;
    begin.type = JournalRecordType::kBegin;
    begin.mode = ApplyMode::kInPlace;
    begin.old_size = 8;
    ASSERT_TRUE(w->Append(begin).ok());
    JournalRecord move;
    move.type = JournalRecordType::kBlockMove;
    move.target_offset = 0;
    move.undo = ToBytes("AAAA");
    ASSERT_TRUE(w->Append(move).ok());
  }
  WriteRaw("f.bin", "BBBBBBBB");  // the executed (uncommitted) move

  obs::SyncObserver obs;
  auto r = RecoverInPlaceFile(p.string(), &obs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->had_journal);
  EXPECT_TRUE(r->rolled_back);
  EXPECT_FALSE(r->completed);
  EXPECT_EQ(FileBytes(p), ToBytes("AAAABBBB"));  // bit-exact old
  EXPECT_FALSE(fs::exists(jp));
  EXPECT_EQ(obs.event_count(obs::Event::kRecovery), 1u);
  EXPECT_EQ(obs.event_count(obs::Event::kRolledBackFile), 1u);
}

TEST_F(ApplyTest, RecoverInPlaceRemovesCommittedJournal) {
  WriteRaw("f.bin", "new content");
  fs::path p = fs::path(root_) / "f.bin";
  fs::path jp = fs::path(p.string() + ".fsx-journal");
  {
    auto w = JournalWriter::Create(jp);
    ASSERT_TRUE(w.ok());
    JournalRecord begin;
    begin.type = JournalRecordType::kBegin;
    begin.mode = ApplyMode::kInPlace;
    begin.old_size = 3;
    ASSERT_TRUE(w->Append(begin).ok());
    JournalRecord commit;
    commit.type = JournalRecordType::kCommit;
    ASSERT_TRUE(w->Append(commit).ok());
  }
  auto r = RecoverInPlaceFile(p.string());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->had_journal);
  EXPECT_TRUE(r->completed);
  EXPECT_FALSE(r->rolled_back);
  EXPECT_EQ(FileBytes(p), ToBytes("new content"));  // kept, not rolled back
  EXPECT_FALSE(fs::exists(jp));
}

}  // namespace
}  // namespace fsx::store
