#include <gtest/gtest.h>

#include "fsync/compress/codec.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/bundle.h"
#include "fsync/workload/release.h"
#include "fsync/workload/text_synth.h"
#include "fsync/workload/web.h"

namespace fsx {
namespace {

TEST(TextSynth, SourceFilesAreDeterministic) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(SynthSourceFile(a, 10000), SynthSourceFile(b, 10000));
}

TEST(TextSynth, SourceFilesAreCompressibleText) {
  Rng rng(6);
  Bytes f = SynthSourceFile(rng, 50000);
  EXPECT_GE(f.size(), 50000u);
  // Mostly printable.
  size_t printable = 0;
  for (uint8_t c : f) {
    printable += (c >= 32 && c < 127) || c == '\n';
  }
  EXPECT_GT(printable, f.size() * 99 / 100);
  // Compresses at least 3x (like real source code).
  EXPECT_LT(Compress(f).size(), f.size() / 3);
}

TEST(TextSynth, WebPagesLookLikeHtml) {
  Rng rng(7);
  Bytes p = SynthWebPage(rng, 8000);
  std::string s = ToString(p);
  EXPECT_NE(s.find("<html>"), std::string::npos);
  EXPECT_NE(s.find("generated: 2001-10-01"), std::string::npos);
  EXPECT_NE(s.find("</html>"), std::string::npos);
}

TEST(Edits, ProducesRequestedKindOfChange) {
  Rng rng(8);
  Bytes base = SynthSourceFile(rng, 30000);

  EditProfile insert_only;
  insert_only.p_insert = 1.0;
  insert_only.p_delete = 0.0;
  insert_only.num_edits = 10;
  Bytes grown = ApplyEdits(base, insert_only, rng);
  EXPECT_GT(grown.size(), base.size());

  EditProfile delete_only;
  delete_only.p_insert = 0.0;
  delete_only.p_delete = 1.0;
  delete_only.num_edits = 10;
  Bytes shrunk = ApplyEdits(base, delete_only, rng);
  EXPECT_LT(shrunk.size(), base.size());

  EditProfile replace_only;
  replace_only.p_insert = 0.0;
  replace_only.p_delete = 0.0;
  replace_only.num_edits = 10;
  Bytes replaced = ApplyEdits(base, replace_only, rng);
  EXPECT_EQ(replaced.size(), base.size());
  EXPECT_NE(replaced, base);
}

TEST(Edits, LocalityClustersChanges) {
  Rng rng(9);
  Bytes base(100000, 'a');

  auto changed_span = [&](double locality, uint64_t seed) {
    Rng r(seed);
    EditProfile ep;
    ep.num_edits = 20;
    ep.locality = locality;
    ep.num_hot_regions = 1;
    ep.p_insert = 0;
    ep.p_delete = 0;  // replacements only, to keep alignment
    Bytes edited = ApplyEdits(base, ep, r);
    size_t first = base.size();
    size_t last = 0;
    for (size_t i = 0; i < base.size(); ++i) {
      if (edited[i] != base[i]) {
        first = std::min(first, i);
        last = std::max(last, i);
      }
    }
    return last > first ? last - first : 0;
  };
  // Average over seeds to avoid flakiness.
  uint64_t local_span = 0;
  uint64_t dispersed_span = 0;
  for (uint64_t s = 0; s < 5; ++s) {
    local_span += changed_span(1.0, s);
    dispersed_span += changed_span(0.0, s + 100);
  }
  EXPECT_LT(local_span, dispersed_span);
}

TEST(Release, ProfilesProduceExpectedShape) {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 40;  // keep the test fast
  ReleasePair pair = MakeRelease(p);
  EXPECT_EQ(pair.old_release.size(), 40u);
  EXPECT_EQ(pair.new_release.size(),
            40u + p.files_added - p.files_removed);

  int unchanged = 0;
  for (const auto& [name, content] : pair.new_release) {
    auto it = pair.old_release.find(name);
    if (it != pair.old_release.end() && it->second == content) {
      ++unchanged;
    }
  }
  // Roughly frac_unchanged of files survive byte-identical.
  EXPECT_GT(unchanged, 10);
  EXPECT_LT(unchanged, 35);
}

TEST(Release, DeterministicInSeed) {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 10;
  ReleasePair a = MakeRelease(p);
  ReleasePair b = MakeRelease(p);
  EXPECT_EQ(a.old_release, b.old_release);
  EXPECT_EQ(a.new_release, b.new_release);
}

TEST(Bundle, RoundTripsCollections) {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 12;
  ReleasePair pair = MakeRelease(p);
  Bytes bundle = BundleCollection(pair.new_release);
  auto back = UnbundleCollection(bundle);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, pair.new_release);
}

TEST(Bundle, EmptyCollection) {
  Bytes bundle = BundleCollection({});
  auto back = UnbundleCollection(bundle);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Bundle, GarbageRejected) {
  Bytes junk = {0xFF, 0xFF, 0xFF, 0x01, 0x02};
  EXPECT_FALSE(UnbundleCollection(junk).ok());
  EXPECT_FALSE(UnbundleCollection(Bytes{}).ok());
}

TEST(Bundle, LayoutIsStable) {
  // Bundles of equal collections must be byte-identical (sorted names),
  // or bundle-level sync would see phantom changes.
  Collection a;
  a["z"] = ToBytes("zz");
  a["a"] = ToBytes("aa");
  Collection b;
  b["a"] = ToBytes("aa");
  b["z"] = ToBytes("zz");
  EXPECT_EQ(BundleCollection(a), BundleCollection(b));
}

TEST(Web, DailyChurnMatchesModel) {
  WebProfile p;
  p.num_pages = 60;
  p.min_page_bytes = 1024;
  p.max_page_bytes = 8192;
  p.p_unchanged_per_day = 0.7;
  WebCollectionModel model(p);
  const Collection& day0 = model.Snapshot(0);
  const Collection& day1 = model.Snapshot(1);
  ASSERT_EQ(day0.size(), day1.size());

  int unchanged = 0;
  for (const auto& [name, page] : day1) {
    unchanged += day0.at(name) == page;
  }
  // ~70% of 60 pages; allow generous slack.
  EXPECT_GT(unchanged, 30);
  EXPECT_LT(unchanged, 56);
}

TEST(Web, ChurnCompoundsOverDays) {
  WebProfile p;
  p.num_pages = 50;
  WebCollectionModel model(p);
  const Collection& day0 = model.Snapshot(0);
  auto count_unchanged = [&](const Collection& day) {
    int n = 0;
    for (const auto& [name, page] : day) {
      n += day0.at(name) == page;
    }
    return n;
  };
  int after1 = count_unchanged(model.Snapshot(1));
  int after7 = count_unchanged(model.Snapshot(7));
  EXPECT_GT(after1, after7);
}

TEST(Web, SnapshotsAreCachedAndStable) {
  WebProfile p;
  p.num_pages = 20;
  WebCollectionModel model(p);
  const Collection& a = model.Snapshot(3);
  Collection copy = a;
  const Collection& b = model.Snapshot(3);
  EXPECT_EQ(copy, b);
}

}  // namespace
}  // namespace fsx
