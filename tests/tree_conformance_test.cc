// Tree-level conformance suite (CTest labels `conformance`, `tree`,
// `par`): the tree-mutation corpus is seed-deterministic and covers the
// advertised shapes; every registered tree protocol survives the
// differential sweep's six invariants; the manifest-reconciliation and
// rename-detection primitives are exact; and wire output is
// bit-identical at any thread count (the `par` contract). Failures
// print the FSX_SEED that replays them.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsync/obs/sync_obs.h"
#include "fsync/reconcile/manifest.h"
#include "fsync/store/fsstore.h"
#include "fsync/testing/differential.h"
#include "fsync/testing/tree_corpus.h"
#include "fsync/testing/tree_protocols.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

std::string Replay(uint64_t seed) {
  return "replay with FSX_SEED=" + std::to_string(seed);
}

/// Multiset of file contents, ignoring paths — the invariant a pure
/// rename preserves.
std::multiset<Bytes> ContentMultiset(const Collection& tree) {
  std::multiset<Bytes> contents;
  for (const auto& [name, data] : tree) {
    contents.insert(data);
  }
  return contents;
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(TreeCorpus, CoversTheAdvertisedShapes) {
  EXPECT_GE(AllTreeShapes().size(), 12u);
  std::set<std::string> names;
  for (TreeShape shape : AllTreeShapes()) {
    EXPECT_TRUE(names.insert(TreeShapeName(shape)).second)
        << "duplicate shape name " << TreeShapeName(shape);
  }
}

TEST(TreeCorpus, PairsAreSeedDeterministic) {
  const uint64_t seed = SeedFromEnv(99);
  for (TreeShape shape : AllTreeShapes()) {
    TreeCorpusPair a = MakeTreeCorpusPair(shape, seed);
    TreeCorpusPair b = MakeTreeCorpusPair(shape, seed);
    EXPECT_EQ(a.old_tree, b.old_tree) << a.Label();
    EXPECT_EQ(a.new_tree, b.new_tree) << a.Label();
  }
  // A different seed must actually reshuffle the content somewhere.
  TreeCorpusPair a = MakeTreeCorpusPair(TreeShape::kMixedChurn, seed);
  TreeCorpusPair c = MakeTreeCorpusPair(TreeShape::kMixedChurn, seed + 1);
  EXPECT_NE(a.old_tree, c.old_tree);
}

TEST(TreeCorpus, ShapesHaveTheirDefiningStructure) {
  const uint64_t seed = SeedFromEnv(7);

  TreeCorpusPair same = MakeTreeCorpusPair(TreeShape::kIdenticalTrees, seed);
  EXPECT_FALSE(same.old_tree.empty());
  EXPECT_EQ(same.old_tree, same.new_tree);

  TreeCorpusPair fill = MakeTreeCorpusPair(TreeShape::kEmptyToFull, seed);
  EXPECT_TRUE(fill.old_tree.empty());
  EXPECT_FALSE(fill.new_tree.empty());

  TreeCorpusPair drain = MakeTreeCorpusPair(TreeShape::kFullToEmpty, seed);
  EXPECT_FALSE(drain.old_tree.empty());
  EXPECT_TRUE(drain.new_tree.empty());

  // Pure rename: every path changed, no content changed.
  TreeCorpusPair ren = MakeTreeCorpusPair(TreeShape::kPureRename, seed);
  EXPECT_EQ(ContentMultiset(ren.old_tree), ContentMultiset(ren.new_tree));
  for (const auto& [name, data] : ren.new_tree) {
    EXPECT_FALSE(ren.old_tree.contains(name))
        << "pure-rename path " << name << " did not move";
  }

  // Swap: same paths, same contents, different assignment.
  TreeCorpusPair swap = MakeTreeCorpusPair(TreeShape::kRenameSwap, seed);
  EXPECT_NE(swap.old_tree, swap.new_tree);
  EXPECT_EQ(ContentMultiset(swap.old_tree), ContentMultiset(swap.new_tree));
  for (const auto& [name, data] : swap.new_tree) {
    EXPECT_TRUE(swap.old_tree.contains(name)) << name;
  }

  // Fan-out: one blob dominates the tree under many names.
  TreeCorpusPair fan =
      MakeTreeCorpusPair(TreeShape::kIdenticalContentFanout, seed);
  std::map<Bytes, int> by_content;
  for (const auto& [name, data] : fan.new_tree) {
    ++by_content[data];
  }
  int max_copies = 0;
  for (const auto& [data, n] : by_content) {
    max_copies = std::max(max_copies, n);
  }
  EXPECT_GE(max_copies, 10) << "fan-out shape lost its shared blob";
}

// ---------------------------------------------------------------------------
// Differential sweep
// ---------------------------------------------------------------------------

TEST(TreeConformance, RegistryHasBothDrivers) {
  const std::vector<TreeProtocolEntry>& protocols = TreeConformanceProtocols();
  ASSERT_EQ(protocols.size(), 2u);
  std::set<std::string> names;
  for (const TreeProtocolEntry& p : protocols) {
    names.insert(p.name);
  }
  EXPECT_TRUE(names.contains("collection-batched"));
  EXPECT_TRUE(names.contains("collection-tree"));
}

TEST(TreeConformance, AllProtocolsPassTheDifferentialSweep) {
  const uint64_t seed = SeedFromEnv(2026);
  DifferentialReport report =
      RunTreeDifferential(MakeTreeConformanceCorpus(2, seed));
  EXPECT_TRUE(report.ok()) << Replay(seed) << "\n" << report.Summary();
  EXPECT_EQ(report.runs, report.protocols * report.pairs);
}

// ---------------------------------------------------------------------------
// Manifest reconciliation primitives
// ---------------------------------------------------------------------------

TEST(ManifestReconcileTest, FindsTheExactDifference) {
  const uint64_t seed = SeedFromEnv(11);
  TreeCorpusPair pair = MakeTreeCorpusPair(TreeShape::kMixedChurn, seed);
  TreeManifest client = BuildTreeManifest(pair.old_tree);
  TreeManifest server = BuildTreeManifest(pair.new_tree);

  SimulatedChannel channel;
  auto diff = ManifestReconcile(client, server, MerkleParams{}, channel);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();

  // Ground truth, computed locally.
  std::set<std::string> want_differing;
  for (const auto& [name, entry] : server) {
    auto it = client.find(name);
    if (it == client.end() || !(it->second == entry)) {
      want_differing.insert(name);
    }
  }
  std::set<std::string> want_extra;
  for (const auto& [name, entry] : client) {
    if (!server.contains(name)) {
      want_extra.insert(name);
    }
  }

  std::set<std::string> got_differing(diff->stale.begin(), diff->stale.end());
  for (const AdoptOp& op : diff->adopts) {
    EXPECT_TRUE(got_differing.insert(op.path).second)
        << op.path << " is both stale and adopted";
  }
  EXPECT_EQ(got_differing, want_differing) << Replay(seed);
  EXPECT_EQ(std::set<std::string>(diff->extra.begin(), diff->extra.end()),
            want_extra);
  // stale_entries carries the server row for every differing path.
  for (const std::string& name : want_differing) {
    auto it = diff->stale_entries.find(name);
    ASSERT_NE(it, diff->stale_entries.end()) << name;
    EXPECT_EQ(it->second, server.at(name)) << name;
  }
}

TEST(ManifestReconcileTest, IdenticalManifestsCostOneExchange) {
  TreeCorpusPair pair =
      MakeTreeCorpusPair(TreeShape::kIdenticalTrees, SeedFromEnv(3));
  TreeManifest manifest = BuildTreeManifest(pair.old_tree);
  SimulatedChannel channel;
  auto diff = ManifestReconcile(manifest, manifest, MerkleParams{}, channel);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_TRUE(diff->stale.empty());
  EXPECT_TRUE(diff->extra.empty());
  EXPECT_TRUE(diff->adopts.empty());
  EXPECT_EQ(diff->rounds, 1);
}

TEST(DetectAdoptionsTest, PicksTheSmallestSourceDeterministically) {
  Bytes blob = ToBytes("shared content blob");
  TreeManifest client;
  TreeEntry entry{FileFingerprint(blob), blob.size(), 0644};
  client["z/copy.bin"] = entry;
  client["a/copy.bin"] = entry;
  client["m/copy.bin"] = entry;

  ManifestDiff diff;
  diff.stale = {"dst/one.bin", "dst/two.bin"};
  diff.stale_entries["dst/one.bin"] = entry;
  diff.stale_entries["dst/two.bin"] = entry;
  DetectAdoptions(client, diff);

  EXPECT_TRUE(diff.stale.empty());
  ASSERT_EQ(diff.adopts.size(), 2u);
  // Both destinations adopt from the lexicographically smallest source;
  // a single source may serve many destinations.
  for (const AdoptOp& op : diff.adopts) {
    EXPECT_EQ(op.from, "a/copy.bin") << op.path;
  }
  EXPECT_EQ(diff.adopts[0].path, "dst/one.bin");
  EXPECT_EQ(diff.adopts[1].path, "dst/two.bin");
}

TEST(DetectAdoptionsTest, RequiresMatchingModeAndSize) {
  Bytes blob = ToBytes("content whose metadata must match too");
  TreeEntry server_entry{FileFingerprint(blob), blob.size(), 0644};

  TreeManifest wrong_mode;
  wrong_mode["exec/copy"] = {server_entry.fp, server_entry.size, 0755};
  ManifestDiff diff;
  diff.stale = {"dst"};
  diff.stale_entries["dst"] = server_entry;
  DetectAdoptions(wrong_mode, diff);
  EXPECT_TRUE(diff.adopts.empty()) << "adopted across a mode change";
  EXPECT_EQ(diff.stale, std::vector<std::string>{"dst"});

  TreeManifest wrong_size;
  wrong_size["trunc/copy"] = {server_entry.fp, server_entry.size + 1, 0644};
  ManifestDiff diff2;
  diff2.stale = {"dst"};
  diff2.stale_entries["dst"] = server_entry;
  DetectAdoptions(wrong_size, diff2);
  EXPECT_TRUE(diff2.adopts.empty()) << "adopted across a size mismatch";
}

TEST(ManifestDigestTest, EqualIffManifestsEqual) {
  const uint64_t seed = SeedFromEnv(5);
  TreeCorpusPair pair = MakeTreeCorpusPair(TreeShape::kMixedChurn, seed);
  Fingerprint base = ManifestDigest(BuildManifest(pair.old_tree));
  EXPECT_EQ(base, ManifestDigest(BuildManifest(pair.old_tree)));
  EXPECT_NE(base, ManifestDigest(BuildManifest(pair.new_tree)));

  // A rename alone — identical bytes under a new path — changes it.
  Collection renamed = pair.old_tree;
  auto first = renamed.begin();
  Bytes data = first->second;
  renamed.erase(first);
  renamed["renamed-away.bin"] = data;
  EXPECT_NE(base, ManifestDigest(BuildManifest(renamed)));

  // A one-byte edit alone changes it.
  Collection edited = pair.old_tree;
  edited.begin()->second.back() ^= 0x01;
  EXPECT_NE(base, ManifestDigest(BuildManifest(edited)));
}

// ---------------------------------------------------------------------------
// Thread-count determinism (the `par` contract)
// ---------------------------------------------------------------------------

TEST(TreeThreadedConformance, WireIsBitIdenticalAtAnyThreadCount) {
  constexpr int kThreads = 4;
  const uint64_t seed = SeedFromEnv(404);
  const std::vector<TreeProtocolEntry>& serial = TreeConformanceProtocols();
  std::vector<TreeProtocolEntry> threaded =
      ThreadedTreeConformanceProtocols(kThreads);
  ASSERT_EQ(serial.size(), threaded.size());

  const std::vector<TreeShape> shapes = {
      TreeShape::kPureRename, TreeShape::kDirMove, TreeShape::kSmallFileSwarm,
      TreeShape::kMixedChurn};
  for (size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].name, threaded[p].name);
    for (TreeShape shape : shapes) {
      TreeCorpusPair pair = MakeTreeCorpusPair(shape, seed);
      SCOPED_TRACE(serial[p].name + " / " + pair.Label() + " — " +
                   Replay(seed));

      SimulatedChannel ch1;
      ch1.EnableTranscript();
      auto r1 = serial[p].run(pair.old_tree, pair.new_tree, ch1, nullptr);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();

      SimulatedChannel ch2;
      ch2.EnableTranscript();
      auto r2 = threaded[p].run(pair.old_tree, pair.new_tree, ch2, nullptr);
      ASSERT_TRUE(r2.ok()) << r2.status().ToString();

      EXPECT_EQ(r1->reconstructed, r2->reconstructed);
      EXPECT_EQ(r1->files_adopted, r2->files_adopted);
      const auto& t1 = ch1.transcript();
      const auto& t2 = ch2.transcript();
      ASSERT_EQ(t1.size(), t2.size());
      for (size_t m = 0; m < t1.size(); ++m) {
        ASSERT_EQ(t1[m].dir, t2[m].dir) << "message " << m;
        ASSERT_EQ(t1[m].payload, t2[m].payload) << "message " << m;
      }
    }
  }
}

TEST(TreeThreadedConformance, ThreadedSweepPassesAllInvariants) {
  const uint64_t seed = SeedFromEnv(808);
  DifferentialReport report = RunTreeDifferential(
      MakeTreeConformanceCorpus(1, seed), ThreadedTreeConformanceProtocols(4));
  EXPECT_TRUE(report.ok()) << Replay(seed) << "\n" << report.Summary();
}

}  // namespace
}  // namespace fsx
