// Kill-point crash sweeps for the durable-apply subsystem. Each sweep
// re-runs the operation under test in a forked child that _exit()s at
// the n-th crash point (every fsync/rename/journal-append boundary),
// for every n the operation fires, then asserts the recovery contract:
// after RecoverTree / RecoverInPlaceFile, every file is bit-exactly its
// old or new version, no journal or staged temp survives, and re-running
// the apply converges to the target tree.
//
// POSIX-only (the harness forks); the whole suite is a no-op elsewhere.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <filesystem>
#include <fstream>
#include <string>

#include "fsync/obs/sync_obs.h"
#include "fsync/store/apply.h"
#include "fsync/store/journal.h"
#include "fsync/testing/crash.h"

namespace fsx::store {
namespace {

namespace fs = std::filesystem;
using fsx::testing::CrashRunResult;
using fsx::testing::RunWithCrashAt;

Bytes FileBytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Bytes{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
}

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fsx_crash_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

// ---------------------------------------------------------------------------
// Tree apply sweep
// ---------------------------------------------------------------------------

Collection OldTree() {
  Collection c;
  c["keep.txt"] = ToBytes("keep me exactly as I am");
  c["change.txt"] = ToBytes("old content of the changed file");
  c["dir/nested.bin"] = ToBytes("old nested bytes");
  c["doomed.txt"] = ToBytes("this file gets deleted");
  return c;
}

Collection NewTree() {
  Collection c = OldTree();
  c["change.txt"] = ToBytes("NEW content, longer than the old one was");
  c["dir/nested.bin"] = ToBytes("NEW nested");
  c["added.txt"] = ToBytes("a brand new file");
  c.erase("doomed.txt");
  return c;
}

class TreeCrashTest : public CrashTest {
 protected:
  /// Resets the tree to the old state with a matching manifest — the
  /// world as it was before the interrupted apply.
  void ResetTree() {
    fs::remove_all(root_);
    ASSERT_TRUE(StoreTree(root_, OldTree(), true, true).ok());
  }

  bool RunApply() {
    auto r = ApplyTree(root_, NewTree(), BuildManifest(OldTree()));
    return r.ok();
  }

  /// The per-file crash contract: every path is bit-exactly its old or
  /// new version (or legitimately absent), with no torn state.
  void ExpectOldOrNew(const std::string& context) {
    Collection old_files = OldTree();
    Collection new_files = NewTree();
    auto disk = LoadTree(root_);
    ASSERT_TRUE(disk.ok()) << context << ": " << disk.status().ToString();
    for (const auto& [name, data] : *disk) {
      bool is_old =
          old_files.contains(name) && old_files.at(name) == data;
      bool is_new =
          new_files.contains(name) && new_files.at(name) == data;
      EXPECT_TRUE(is_old || is_new)
          << context << ": torn or foreign content in " << name;
    }
    for (const auto& [name, data] : old_files) {
      if (!new_files.contains(name)) {
        continue;  // deletion in flight: present-old or absent are both fine
      }
      EXPECT_TRUE(disk->contains(name))
          << context << ": " << name << " vanished";
    }
  }

  void ExpectNoApplyDebris(const std::string& context) {
    for (auto it = fs::recursive_directory_iterator(root_);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) {
        continue;
      }
      std::string name = it->path().filename().string();
      EXPECT_FALSE(name.ends_with(kTempSuffix))
          << context << ": stranded temp " << it->path();
      EXPECT_FALSE(name.ends_with(kJournalSuffix))
          << context << ": surviving journal " << it->path();
    }
  }
};

TEST_F(TreeCrashTest, EveryKillPointRecoversToOldOrNew) {
  ResetTree();
  uint64_t total = fsx::testing::CountCrashPoints([&] { return RunApply(); });
  ASSERT_GT(total, 0u) << "apply fired no crash points";

  for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
    std::string ctx = "kill-point " + std::to_string(n);
    ResetTree();
    CrashRunResult run = RunWithCrashAt(n, [&] { return RunApply(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
        << ctx << ": " << run.error;

    // Even before recovery, content files are never torn: staging and
    // rename keep each one bit-exactly old or new.
    ExpectOldOrNew(ctx + " pre-recovery");

    obs::SyncObserver obs;
    auto rec = RecoverTree(root_, &obs);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    ExpectOldOrNew(ctx + " post-recovery");
    ExpectNoApplyDebris(ctx);
    if (rec->had_journal) {
      EXPECT_EQ(obs.event_count(obs::Event::kRecovery), 1u) << ctx;
      // Recovery refreshed the manifest to what survived.
      auto dirty = VerifyTree(root_);
      ASSERT_TRUE(dirty.ok()) << ctx << ": " << dirty.status().ToString();
      EXPECT_TRUE(dirty->empty()) << ctx;
    }

    // Re-running the same apply must converge on the target tree.
    auto again = ApplyTree(root_, NewTree(), BuildManifest(OldTree()));
    ASSERT_TRUE(again.ok()) << ctx << ": " << again.status().ToString();
    EXPECT_TRUE(again->conflicts.empty()) << ctx;
    auto final_disk = LoadTree(root_);
    ASSERT_TRUE(final_disk.ok()) << ctx;
    EXPECT_EQ(*final_disk, NewTree()) << ctx << ": re-apply did not converge";
    auto dirty = VerifyTree(root_);
    ASSERT_TRUE(dirty.ok()) << ctx;
    EXPECT_TRUE(dirty->empty()) << ctx;
  }
}

TEST_F(TreeCrashTest, CrashDuringRecoveryStillRecovers) {
  ResetTree();
  uint64_t total = fsx::testing::CountCrashPoints([&] { return RunApply(); });
  ASSERT_GT(total, 0u);
  // Die mid-apply (roughly half way — after some renames, journal
  // populated), then sweep every kill point of the *recovery*.
  const int64_t apply_kill = static_cast<int64_t>(total) / 2;

  auto crash_apply = [&] {
    ResetTree();
    CrashRunResult run =
        RunWithCrashAt(apply_kill, [&] { return RunApply(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed) << run.error;
  };

  crash_apply();
  uint64_t recovery_points = fsx::testing::CountCrashPoints(
      [&] { return RecoverTree(root_).ok(); });

  for (int64_t m = 0; m < static_cast<int64_t>(recovery_points); ++m) {
    std::string ctx = "recovery kill-point " + std::to_string(m);
    crash_apply();
    CrashRunResult run =
        RunWithCrashAt(m, [&] { return RecoverTree(root_).ok(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
        << ctx << ": " << run.error;

    // Recovery is idempotent: a second, uninterrupted pass must finish
    // the job no matter where the first one died.
    auto rec = RecoverTree(root_);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    ExpectOldOrNew(ctx);
    ExpectNoApplyDebris(ctx);

    auto again = ApplyTree(root_, NewTree(), BuildManifest(OldTree()));
    ASSERT_TRUE(again.ok()) << ctx;
    auto final_disk = LoadTree(root_);
    ASSERT_TRUE(final_disk.ok()) << ctx;
    EXPECT_EQ(*final_disk, NewTree()) << ctx;
  }
}

// ---------------------------------------------------------------------------
// In-place apply sweep
// ---------------------------------------------------------------------------

class InPlaceCrashTest : public CrashTest {
 protected:
  void SetUp() override {
    CrashTest::SetUp();
    fs::create_directories(root_);
    path_ = (fs::path(root_) / "target.bin").string();
    ConfigurePlan();
    auto want = InPlaceReconstruct(old_content_, commands_, new_size_);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    new_content_ = want->reconstructed;
    ASSERT_NE(new_content_, old_content_);
  }

  /// The plan under test; subclasses swap in other shapes (shrink).
  virtual void ConfigurePlan() {
    old_content_ = ToBytes("0123456789abcdefABCDEF");
    // Swap the two 8-byte halves (a dependency cycle: one side gets
    // promoted to a literal) and append fresh bytes — every interesting
    // plan shape in one small file.
    commands_ = {CopyCmd(8, 8, 0), CopyCmd(0, 8, 8), LitCmd("+tail+", 16)};
    new_size_ = 22;
  }

  static ReconstructCommand CopyCmd(uint64_t src, uint64_t len,
                                    uint64_t dst) {
    ReconstructCommand c;
    c.kind = ReconstructCommand::kCopy;
    c.source_offset = src;
    c.length = len;
    c.target_offset = dst;
    return c;
  }
  static ReconstructCommand LitCmd(const std::string& s, uint64_t dst) {
    ReconstructCommand c;
    c.kind = ReconstructCommand::kLiteral;
    c.literal = ToBytes(s);
    c.target_offset = dst;
    return c;
  }

  void ResetFile() {
    fs::remove(fs::path(path_));
    fs::remove(fs::path(path_ + ".fsx-journal"));
    std::ofstream out(path_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(old_content_.data()),
              static_cast<std::streamsize>(old_content_.size()));
  }

  bool RunApply() {
    return InPlaceApplyFile(path_, commands_, new_size_).ok();
  }

  /// Kills the apply at every crash point it fires and asserts the
  /// recovery contract: bit-exactly old or new, no surviving journal,
  /// and convergence on re-apply.
  void SweepEveryKillPoint() {
    ResetFile();
    uint64_t total =
        fsx::testing::CountCrashPoints([&] { return RunApply(); });
    ASSERT_GT(total, 0u);

    for (int64_t n = 0; n < static_cast<int64_t>(total); ++n) {
      std::string ctx = "kill-point " + std::to_string(n);
      ResetFile();
      CrashRunResult run = RunWithCrashAt(n, [&] { return RunApply(); });
      ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
          << ctx << ": " << run.error;

      obs::SyncObserver obs;
      auto rec = RecoverInPlaceFile(path_, &obs);
      ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
      Bytes disk = FileBytes(path_);
      bool is_old = disk == old_content_;
      bool is_new = disk == new_content_;
      EXPECT_TRUE(is_old || is_new) << ctx << ": torn file after recovery";
      EXPECT_FALSE(fs::exists(path_ + ".fsx-journal")) << ctx;
      if (rec->had_journal) {
        EXPECT_EQ(obs.event_count(obs::Event::kRecovery), 1u) << ctx;
      }
      if (rec->rolled_back) {
        EXPECT_TRUE(is_old) << ctx << ": rollback did not restore old bytes";
      }

      // Converge: a rolled-back file re-applies from scratch; a
      // completed one is already the target.
      if (is_old) {
        auto again = InPlaceApplyFile(path_, commands_, new_size_);
        ASSERT_TRUE(again.ok()) << ctx << ": " << again.status().ToString();
      }
      EXPECT_EQ(FileBytes(path_), new_content_) << ctx;
    }
  }

  std::string path_;
  Bytes old_content_;
  Bytes new_content_;
  std::vector<ReconstructCommand> commands_;
  uint64_t new_size_ = 0;
};

TEST_F(InPlaceCrashTest, EveryKillPointRollsBackOrCompletes) {
  SweepEveryKillPoint();
}

// A shrinking plan: the final Truncate(new_size) discards tail bytes no
// block move journaled, so rollback depends on the pre-truncate tail
// undo record. Old "AAAABBBB" -> new "BBBB"; a crash between the shrink
// and COMMIT must recover to exactly "AAAABBBB", never "AAAA\0\0\0\0".
class InPlaceShrinkCrashTest : public InPlaceCrashTest {
 protected:
  void ConfigurePlan() override {
    old_content_ = ToBytes("AAAABBBB");
    commands_ = {CopyCmd(4, 4, 0)};
    new_size_ = 4;
  }
};

TEST_F(InPlaceShrinkCrashTest, EveryKillPointRollsBackOrCompletes) {
  SweepEveryKillPoint();
}

// Shrink whose copy sources live in the doomed tail: rollback must
// restore [new_size, old_size) bit-exactly or the re-apply after a
// rolled-back crash has nothing to copy from.
class InPlaceShrinkFromTailCrashTest : public InPlaceCrashTest {
 protected:
  void ConfigurePlan() override {
    old_content_ = ToBytes("0123456789abcdef");
    commands_ = {CopyCmd(10, 6, 0), LitCmd("zz", 6)};
    new_size_ = 8;
  }
};

TEST_F(InPlaceShrinkFromTailCrashTest, EveryKillPointRollsBackOrCompletes) {
  SweepEveryKillPoint();
}

TEST_F(InPlaceCrashTest, CrashDuringRollbackIsIdempotent) {
  ResetFile();
  uint64_t total = fsx::testing::CountCrashPoints([&] { return RunApply(); });
  ASSERT_GT(total, 4u);
  // Die deep in the apply so the journal holds several undo images.
  const int64_t apply_kill = static_cast<int64_t>(total) - 5;

  auto crash_apply = [&] {
    ResetFile();
    CrashRunResult run =
        RunWithCrashAt(apply_kill, [&] { return RunApply(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed) << run.error;
  };

  crash_apply();
  uint64_t rollback_points = fsx::testing::CountCrashPoints(
      [&] { return RecoverInPlaceFile(path_).ok(); });

  for (int64_t m = 0; m < static_cast<int64_t>(rollback_points); ++m) {
    std::string ctx = "rollback kill-point " + std::to_string(m);
    crash_apply();
    CrashRunResult run =
        RunWithCrashAt(m, [&] { return RecoverInPlaceFile(path_).ok(); });
    ASSERT_EQ(run.outcome, CrashRunResult::Outcome::kCrashed)
        << ctx << ": " << run.error;

    auto rec = RecoverInPlaceFile(path_);
    ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
    Bytes disk = FileBytes(path_);
    EXPECT_TRUE(disk == old_content_ || disk == new_content_)
        << ctx << ": torn file after re-recovery";
    EXPECT_FALSE(fs::exists(path_ + ".fsx-journal")) << ctx;
  }
}

}  // namespace
}  // namespace fsx::store

#endif  // __unix__ || __APPLE__
