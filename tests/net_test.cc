#include <gtest/gtest.h>

#include "fsync/net/channel.h"

namespace fsx {
namespace {

using Dir = SimulatedChannel::Direction;

TEST(Channel, DeliversInOrder) {
  SimulatedChannel ch;
  Bytes a = {1, 2, 3};
  Bytes b = {4};
  ch.Send(Dir::kClientToServer, a);
  ch.Send(Dir::kClientToServer, b);
  EXPECT_EQ(ch.Receive(Dir::kClientToServer).value(), a);
  EXPECT_EQ(ch.Receive(Dir::kClientToServer).value(), b);
}

TEST(Channel, ReceiveOnEmptyFails) {
  SimulatedChannel ch;
  EXPECT_FALSE(ch.Receive(Dir::kServerToClient).ok());
}

TEST(Channel, CountsBytesWithFraming) {
  SimulatedChannel ch;
  Bytes payload(200, 7);
  ch.Send(Dir::kClientToServer, payload);
  // 200 bytes + 2-byte varint frame.
  EXPECT_EQ(ch.stats().client_to_server_bytes, 202u);
  ch.Send(Dir::kServerToClient, Bytes(5, 1));
  EXPECT_EQ(ch.stats().server_to_client_bytes, 6u);
  EXPECT_EQ(ch.stats().total_bytes(), 208u);
}

TEST(Channel, CountsRoundtrips) {
  SimulatedChannel ch;
  Bytes m = {0};
  // request -> response = 1 roundtrip.
  ch.Send(Dir::kClientToServer, m);
  ch.Send(Dir::kServerToClient, m);
  EXPECT_EQ(ch.stats().roundtrips, 1u);
  // Consecutive server messages do not add roundtrips.
  ch.Send(Dir::kServerToClient, m);
  ch.Send(Dir::kServerToClient, m);
  EXPECT_EQ(ch.stats().roundtrips, 1u);
  // Another request/response cycle.
  ch.Send(Dir::kClientToServer, m);
  ch.Send(Dir::kServerToClient, m);
  EXPECT_EQ(ch.stats().roundtrips, 2u);
}

TEST(Channel, HasPending) {
  SimulatedChannel ch;
  EXPECT_FALSE(ch.HasPending(Dir::kClientToServer));
  ch.Send(Dir::kClientToServer, Bytes{1});
  EXPECT_TRUE(ch.HasPending(Dir::kClientToServer));
  EXPECT_FALSE(ch.HasPending(Dir::kServerToClient));
  (void)ch.Receive(Dir::kClientToServer);
  EXPECT_FALSE(ch.HasPending(Dir::kClientToServer));
}

TEST(Channel, ResetStatsClearsCounters) {
  SimulatedChannel ch;
  ch.Send(Dir::kClientToServer, Bytes{1, 2});
  (void)ch.Receive(Dir::kClientToServer);
  ch.ResetStats();
  EXPECT_EQ(ch.stats().total_bytes(), 0u);
  EXPECT_EQ(ch.stats().roundtrips, 0u);
}

TEST(Channel, TamperedDeliveryKeepsOriginalAccounting) {
  // The documented contract: byte accounting reflects the payload as
  // sent, not as delivered. Grow and shrink the message in transit and
  // check the counters both times.
  SimulatedChannel ch;
  ch.SetTamper([](Dir, Bytes& msg) { msg.resize(msg.size() * 2, 0xEE); });
  Bytes payload(200, 7);
  ch.Send(Dir::kClientToServer, payload);
  EXPECT_EQ(ch.stats().client_to_server_bytes, 202u);  // 200 + 2B frame
  auto grown = ch.Receive(Dir::kClientToServer);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->size(), 400u);  // delivery shows the tampered bytes
  EXPECT_EQ(ch.stats().client_to_server_bytes, 202u);  // accounting doesn't

  ch.SetTamper([](Dir, Bytes& msg) { msg.resize(3); });
  ch.Send(Dir::kServerToClient, payload);
  EXPECT_EQ(ch.stats().server_to_client_bytes, 202u);
  auto shrunk = ch.Receive(Dir::kServerToClient);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(shrunk->size(), 3u);
  EXPECT_EQ(ch.stats().server_to_client_bytes, 202u);
}

TEST(Channel, DropFaultLosesMessageButCountsBytes) {
  SimulatedChannel ch;
  ch.SetFault([](Dir, ByteSpan) {
    return SimulatedChannel::FaultAction::kDrop;
  });
  ch.Send(Dir::kClientToServer, Bytes(10, 1));
  EXPECT_FALSE(ch.HasPending(Dir::kClientToServer));
  EXPECT_EQ(ch.stats().client_to_server_bytes, 11u);  // sender still paid
  EXPECT_FALSE(ch.Receive(Dir::kClientToServer).ok());
}

TEST(Channel, DuplicateFaultDeliversTwiceCountsOnce) {
  SimulatedChannel ch;
  ch.SetFault([](Dir, ByteSpan) {
    return SimulatedChannel::FaultAction::kDuplicate;
  });
  Bytes m = {1, 2, 3};
  ch.Send(Dir::kServerToClient, m);
  EXPECT_EQ(ch.stats().server_to_client_bytes, 4u);  // one send's cost
  EXPECT_EQ(ch.Receive(Dir::kServerToClient).value(), m);
  EXPECT_EQ(ch.Receive(Dir::kServerToClient).value(), m);
  EXPECT_FALSE(ch.HasPending(Dir::kServerToClient));
}

TEST(Channel, ReorderFaultJumpsTheQueue) {
  SimulatedChannel ch;
  Bytes first = {1};
  Bytes second = {2};
  ch.Send(Dir::kClientToServer, first);
  ch.SetFault([](Dir, ByteSpan) {
    return SimulatedChannel::FaultAction::kReorder;
  });
  ch.Send(Dir::kClientToServer, second);
  EXPECT_EQ(ch.Receive(Dir::kClientToServer).value(), second);
  EXPECT_EQ(ch.Receive(Dir::kClientToServer).value(), first);
}

TEST(Channel, FaultHooksCanBeCleared) {
  SimulatedChannel ch;
  ch.SetFault([](Dir, ByteSpan) {
    return SimulatedChannel::FaultAction::kDrop;
  });
  ch.SetTamper([](Dir, Bytes& msg) { msg.clear(); });
  ch.SetFault(nullptr);
  ch.SetTamper(nullptr);
  Bytes m = {9};
  ch.Send(Dir::kClientToServer, m);
  EXPECT_EQ(ch.Receive(Dir::kClientToServer).value(), m);
}

TEST(LinkModel, TransferSeconds) {
  LinkModel link;
  link.downstream_bytes_per_sec = 1000;
  link.upstream_bytes_per_sec = 500;
  link.roundtrip_latency_sec = 0.25;
  TrafficStats stats;
  stats.server_to_client_bytes = 2000;
  stats.client_to_server_bytes = 500;
  stats.roundtrips = 4;
  EXPECT_DOUBLE_EQ(link.TransferSeconds(stats), 2.0 + 1.0 + 1.0);
}

TEST(LinkModel, AsymmetricLinksPenalizeUploads) {
  LinkModel slow_up;
  slow_up.downstream_bytes_per_sec = 1 << 20;
  slow_up.upstream_bytes_per_sec = 1 << 14;
  TrafficStats up_heavy;
  up_heavy.client_to_server_bytes = 1 << 18;
  TrafficStats down_heavy;
  down_heavy.server_to_client_bytes = 1 << 18;
  EXPECT_GT(slow_up.TransferSeconds(up_heavy),
            slow_up.TransferSeconds(down_heavy));
}

}  // namespace
}  // namespace fsx
