#include <gtest/gtest.h>

#include "fsync/core/broadcast.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

// End-to-end broadcast flow for one client.
StatusOr<Bytes> RunBroadcast(ByteSpan f_old, ByteSpan f_new,
                             const HashCastConfig& config,
                             uint64_t* cast_bytes = nullptr,
                             uint64_t* delta_bytes = nullptr,
                             double* coverage = nullptr) {
  FSYNC_ASSIGN_OR_RETURN(Bytes cast, BuildHashCast(f_new, config));
  if (cast_bytes != nullptr) {
    *cast_bytes = cast.size();
  }
  FSYNC_ASSIGN_OR_RETURN(CastMap map, ApplyHashCast(f_old, cast));
  if (coverage != nullptr) {
    *coverage = map.CoveredFraction();
  }
  Bytes request = EncodeCastRequest(map);
  FSYNC_ASSIGN_OR_RETURN(Bytes delta, MakeCastDelta(f_new, request, config));
  if (delta_bytes != nullptr) {
    *delta_bytes = delta.size();
  }
  return ApplyCastDelta(f_old, map, delta);
}

TEST(Broadcast, SingleClientReconstructs) {
  Rng rng(1);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  HashCastConfig config;
  double coverage = 0;
  auto r = RunBroadcast(f_old, f_new, config, nullptr, nullptr, &coverage);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, f_new);
  EXPECT_GT(coverage, 0.6);
}

TEST(Broadcast, ManyClientsOneCast) {
  // The whole point: one cast serves clients at different staleness.
  Rng rng(2);
  Bytes v0 = SynthSourceFile(rng, 60000);
  EditProfile ep;
  ep.num_edits = 6;
  Bytes v1 = ApplyEdits(v0, ep, rng);
  Bytes v2 = ApplyEdits(v1, ep, rng);
  Bytes v3 = ApplyEdits(v2, ep, rng);

  HashCastConfig config;
  auto cast = BuildHashCast(v3, config);
  ASSERT_TRUE(cast.ok());
  for (const Bytes* old_version : {&v0, &v1, &v2}) {
    auto map = ApplyHashCast(*old_version, *cast);
    ASSERT_TRUE(map.ok());
    auto delta = MakeCastDelta(v3, EncodeCastRequest(*map), config);
    ASSERT_TRUE(delta.ok());
    auto rebuilt = ApplyCastDelta(*old_version, *map, *delta);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(*rebuilt, v3);
  }
}

TEST(Broadcast, FresherClientsGetSmallerDeltas) {
  Rng rng(3);
  Bytes v0 = SynthSourceFile(rng, 100000);
  EditProfile ep;
  ep.num_edits = 12;
  Bytes v1 = ApplyEdits(v0, ep, rng);
  Bytes v2 = ApplyEdits(v1, ep, rng);

  HashCastConfig config;
  uint64_t delta_stale = 0;
  uint64_t delta_fresh = 0;
  ASSERT_TRUE(
      RunBroadcast(v0, v2, config, nullptr, &delta_stale, nullptr).ok());
  ASSERT_TRUE(
      RunBroadcast(v1, v2, config, nullptr, &delta_fresh, nullptr).ok());
  EXPECT_LE(delta_fresh, delta_stale);
}

TEST(Broadcast, EmptyAndUnrelatedClients) {
  Rng rng(4);
  Bytes f_new = SynthSourceFile(rng, 30000);
  HashCastConfig config;
  // Client with nothing: cast matches nothing, delta is ~ compressed file.
  auto r = RunBroadcast({}, f_new, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, f_new);
  // Client with unrelated content.
  Bytes junk = rng.RandomBytes(30000);
  auto r2 = RunBroadcast(junk, f_new, config);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, f_new);
}

TEST(Broadcast, CastCostIsOneTimeAndBounded) {
  Rng rng(5);
  Bytes f_new = SynthSourceFile(rng, 200000);
  HashCastConfig config;
  auto cast = BuildHashCast(f_new, config);
  ASSERT_TRUE(cast.ok());
  // Full tree of (24+16)-bit hashes down to 64-byte blocks is ~2*n/64
  // hashes: the cast must stay a modest fraction of the file.
  EXPECT_LT(cast->size(), f_new.size() / 2);
  EXPECT_GT(cast->size(), f_new.size() / 50);
}

TEST(Broadcast, CorruptCastRejectedCleanly) {
  Rng rng(6);
  Bytes f_new = SynthSourceFile(rng, 20000);
  Bytes f_old = f_new;
  HashCastConfig config;
  auto cast = BuildHashCast(f_new, config);
  ASSERT_TRUE(cast.ok());
  for (size_t cut : {size_t{0}, size_t{4}, cast->size() / 2}) {
    Bytes truncated(cast->begin(), cast->begin() + cut);
    auto map = ApplyHashCast(f_old, truncated);
    EXPECT_FALSE(map.ok()) << "cut=" << cut;
  }
  EXPECT_FALSE(BuildHashCast(f_new, HashCastConfig{.start_block_size = 3})
                   .ok());
}

TEST(Broadcast, BadRequestRejected) {
  Rng rng(7);
  Bytes f_new = SynthSourceFile(rng, 10000);
  HashCastConfig config;
  Bytes junk = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                0xFF};
  EXPECT_FALSE(MakeCastDelta(f_new, junk, config).ok());
}

class BroadcastFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BroadcastFuzz, AlwaysReconstructsOrFailsCleanly) {
  Rng rng(GetParam());
  Bytes f_old = SynthSourceFile(rng, 1 + rng.Uniform(50000));
  EditProfile ep;
  ep.num_edits = static_cast<int>(rng.Uniform(25));
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  HashCastConfig config;
  config.start_block_size = 512u << rng.Uniform(4);
  config.min_block_size = 32u << rng.Uniform(3);
  config.weak_bits = 16 + static_cast<int>(rng.Uniform(17));
  config.strong_bits = 8 + static_cast<int>(rng.Uniform(25));
  auto r = RunBroadcast(f_old, f_new, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, f_new);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastFuzz,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace fsx
