#include <gtest/gtest.h>

#include "fsync/zsync/zsync.h"

#include "fsync/compress/codec.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

StatusOr<Bytes> RunZsync(ByteSpan f_old, ByteSpan f_new,
                         const ZsyncParams& params,
                         uint64_t* control_bytes = nullptr,
                         uint64_t* payload_bytes = nullptr,
                         double* coverage = nullptr) {
  FSYNC_ASSIGN_OR_RETURN(Bytes control, MakeZsyncControl(f_new, params));
  if (control_bytes != nullptr) {
    *control_bytes = control.size();
  }
  FSYNC_ASSIGN_OR_RETURN(ZsyncPlan plan, PlanFromControl(f_old, control));
  if (coverage != nullptr) {
    *coverage = plan.CoveredFraction();
  }
  Bytes request = EncodeRangeRequest(plan);
  FSYNC_ASSIGN_OR_RETURN(Bytes payload, ServeRanges(f_new, request, params));
  if (payload_bytes != nullptr) {
    *payload_bytes = payload.size();
  }
  return ApplyZsync(f_old, plan, payload);
}

TEST(Zsync, SmallEditReconstructs) {
  Rng rng(1);
  Bytes f_old = SynthSourceFile(rng, 100000);
  EditProfile ep;
  ep.num_edits = 6;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  ZsyncParams params;
  double coverage = 0;
  uint64_t control = 0;
  uint64_t payload = 0;
  auto r = RunZsync(f_old, f_new, params, &control, &payload, &coverage);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, f_new);
  EXPECT_GT(coverage, 0.7);
  // Control file: ~(24+24) bits per 2 KiB block.
  EXPECT_LT(control, f_new.size() / 200);
  EXPECT_LT(payload, f_new.size() / 2);
}

TEST(Zsync, IdenticalFilesFetchNothing) {
  Rng rng(2);
  Bytes f = SynthSourceFile(rng, 50000);
  ZsyncParams params;
  auto control = MakeZsyncControl(f, params);
  ASSERT_TRUE(control.ok());
  auto plan = PlanFromControl(f, *control);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->CoveredFraction(), 1.0);
  EXPECT_TRUE(plan->Missing().empty());
  auto r = RunZsync(f, f, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, f);
}

TEST(Zsync, EmptyAndUnrelated) {
  Rng rng(3);
  Bytes f_new = SynthSourceFile(rng, 30000);
  ZsyncParams params;
  auto a = RunZsync({}, f_new, params);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, f_new);
  Bytes junk = rng.RandomBytes(30000);
  auto b = RunZsync(junk, f_new, params);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, f_new);
  auto c = RunZsync(f_new, {}, params);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
}

TEST(Zsync, TailBlockMatches) {
  // New file whose length is not a multiple of the block size, tail
  // present in the old file: the short tail must match, not be fetched.
  Rng rng(4);
  Bytes f_old = SynthSourceFile(rng, 50000);
  Bytes f_new(f_old.begin(), f_old.begin() + 10300);  // 10300 % 2048 != 0
  ZsyncParams params;
  auto control = MakeZsyncControl(f_new, params);
  ASSERT_TRUE(control.ok());
  auto plan = PlanFromControl(f_old, *control);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->CoveredFraction(), 1.0);
}

TEST(Zsync, MissingRangesCoalesce) {
  ZsyncPlan plan;
  plan.new_size = 10000;
  plan.block_size = 1000;
  plan.sources.assign(10, 0);
  plan.sources[2] = ZsyncPlan::kMissing;
  plan.sources[3] = ZsyncPlan::kMissing;
  plan.sources[7] = ZsyncPlan::kMissing;
  auto missing = plan.Missing();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].begin, 2000u);
  EXPECT_EQ(missing[0].length, 2000u);
  EXPECT_EQ(missing[1].begin, 7000u);
  EXPECT_EQ(missing[1].length, 1000u);
}

TEST(Zsync, CorruptControlRejected) {
  Rng rng(5);
  Bytes f = SynthSourceFile(rng, 20000);
  ZsyncParams params;
  auto control = MakeZsyncControl(f, params);
  ASSERT_TRUE(control.ok());
  Bytes truncated(control->begin(), control->begin() + control->size() / 2);
  EXPECT_FALSE(PlanFromControl(f, truncated).ok());
  EXPECT_FALSE(PlanFromControl(f, Bytes{}).ok());
  ZsyncParams bad;
  bad.weak_bits = 0;
  EXPECT_FALSE(MakeZsyncControl(f, bad).ok());
}

TEST(Zsync, WrongPayloadDetected) {
  Rng rng(6);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  ZsyncParams params;
  auto control = MakeZsyncControl(f_new, params);
  ASSERT_TRUE(control.ok());
  auto plan = PlanFromControl(f_old, *control);
  ASSERT_TRUE(plan.ok());
  Bytes wrong = Compress(rng.RandomBytes(4096));
  auto r = ApplyZsync(f_old, *plan, wrong);
  EXPECT_FALSE(r.ok());  // payload too short or fingerprint mismatch
}

class ZsyncFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZsyncFuzz, AlwaysReconstructs) {
  Rng rng(GetParam());
  Bytes f_old = SynthSourceFile(rng, 1 + rng.Uniform(60000));
  EditProfile ep;
  ep.num_edits = static_cast<int>(rng.Uniform(25));
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  ZsyncParams params;
  params.block_size = 256u << rng.Uniform(5);
  params.weak_bits = 16 + static_cast<int>(rng.Uniform(17));
  params.strong_bits = 16 + static_cast<int>(rng.Uniform(17));
  auto r = RunZsync(f_old, f_new, params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, f_new);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZsyncFuzz,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace fsx
