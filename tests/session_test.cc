#include <gtest/gtest.h>

#include "fsync/core/session.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

FileSyncResult MustSync(const Bytes& f_old, const Bytes& f_new,
                        const SyncConfig& config) {
  SimulatedChannel channel;
  auto r = SynchronizeFile(f_old, f_new, config, channel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reconstructed, f_new);
  return std::move(*r);
}

TEST(Session, UnchangedFileCostsOnlyFingerprints) {
  Rng rng(1);
  Bytes f = SynthSourceFile(rng, 20000);
  SyncConfig config;
  FileSyncResult r = MustSync(f, f, config);
  EXPECT_TRUE(r.unchanged);
  EXPECT_LT(r.stats.total_bytes(), 64u);
}

TEST(Session, SmallEditCheaperThanCompressedFull) {
  Rng rng(2);
  Bytes f_old = SynthSourceFile(rng, 100000);
  EditProfile ep;
  ep.num_edits = 5;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);
  EXPECT_FALSE(r.unchanged);
  EXPECT_GT(r.confirmed_fraction, 0.5);
  // Far cheaper than shipping the (compressible) file.
  EXPECT_LT(r.stats.total_bytes(), f_new.size() / 4);
}

TEST(Session, EmptyOldFile) {
  Rng rng(3);
  Bytes f_new = SynthSourceFile(rng, 30000);
  SyncConfig config;
  FileSyncResult r = MustSync({}, f_new, config);
  EXPECT_EQ(r.reconstructed, f_new);
}

TEST(Session, EmptyNewFile) {
  Rng rng(4);
  Bytes f_old = SynthSourceFile(rng, 10000);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, {}, config);
  EXPECT_TRUE(r.reconstructed.empty());
  EXPECT_LT(r.stats.total_bytes(), 128u);
}

TEST(Session, BothEmpty) {
  SyncConfig config;
  FileSyncResult r = MustSync({}, {}, config);
  EXPECT_TRUE(r.unchanged);
}

TEST(Session, CompletelyDifferentFiles) {
  Rng rng(5);
  Bytes f_old = rng.RandomBytes(20000);
  Bytes f_new = rng.RandomBytes(20000);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);
  // Nothing to match; cost is dominated by the delta (~ full file for
  // random bytes) plus modest map-phase overhead.
  EXPECT_LT(r.confirmed_fraction, 0.05);
  EXPECT_LT(r.stats.total_bytes(), f_new.size() * 5 / 4 + 4096);
}

TEST(Session, TinyFiles) {
  SyncConfig config;
  Bytes a = ToBytes("x");
  Bytes b = ToBytes("y");
  FileSyncResult r = MustSync(a, b, config);
  EXPECT_EQ(r.reconstructed, b);
}

TEST(Session, NewFileMuchLargerThanOld) {
  Rng rng(6);
  Bytes f_old = SynthSourceFile(rng, 2000);
  Bytes f_new = f_old;
  Bytes extra = SynthSourceFile(rng, 60000);
  Append(f_new, extra);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);
  EXPECT_EQ(r.reconstructed, f_new);
}

TEST(Session, OldFileMuchLargerThanNew) {
  Rng rng(7);
  Bytes f_old = SynthSourceFile(rng, 60000);
  Bytes f_new(f_old.begin() + 20000, f_old.begin() + 30000);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);
  EXPECT_EQ(r.reconstructed, f_new);
  // The content exists verbatim in F_old: the map should find most of it.
  EXPECT_GT(r.confirmed_fraction, 0.8);
  EXPECT_LT(r.stats.total_bytes(), 2000u);
}

TEST(Session, InsertionShiftsAlignment) {
  // A single insertion near the front must not defeat the matcher: all
  // content after the insertion is shifted by an arbitrary amount.
  Rng rng(8);
  Bytes f_old = SynthSourceFile(rng, 50000);
  Bytes f_new = f_old;
  Bytes ins = ToBytes("INSERTED-SEGMENT-123");
  f_new.insert(f_new.begin() + 100, ins.begin(), ins.end());
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);
  EXPECT_GT(r.confirmed_fraction, 0.8);
  EXPECT_LT(r.stats.total_bytes(), 4000u);
}

TEST(Session, RoundtripCapIsHonored) {
  Rng rng(9);
  Bytes f_old = SynthSourceFile(rng, 40000);
  EditProfile ep;
  ep.num_edits = 10;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  SyncConfig capped;
  capped.max_roundtrips = 2;
  FileSyncResult r = MustSync(f_old, f_new, capped);
  EXPECT_LE(r.stats.roundtrips, 2u);

  SyncConfig uncapped;
  FileSyncResult r2 = MustSync(f_old, f_new, uncapped);
  EXPECT_GT(r2.stats.roundtrips, 2u);
}

TEST(Session, DecomposableReducesServerTraffic) {
  Rng rng(10);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 30;
  ep.locality = 0.3;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  SyncConfig with;
  with.use_decomposable = true;
  SyncConfig without;
  without.use_decomposable = false;
  FileSyncResult rw = MustSync(f_old, f_new, with);
  FileSyncResult ro = MustSync(f_old, f_new, without);
  EXPECT_LT(rw.map_server_to_client_bytes, ro.map_server_to_client_bytes);
}

TEST(Session, ContinuationEnablesSmallerBlocks) {
  Rng rng(11);
  Bytes f_old = SynthSourceFile(rng, 60000);
  EditProfile ep;
  ep.num_edits = 12;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  SyncConfig with;
  with.use_continuation = true;
  with.min_continuation_block = 16;
  SyncConfig without;
  without.use_continuation = false;
  without.min_continuation_block = without.min_block_size;
  FileSyncResult rw = MustSync(f_old, f_new, with);
  FileSyncResult ro = MustSync(f_old, f_new, without);
  // Continuation must increase map coverage (its whole point).
  EXPECT_GE(rw.confirmed_fraction, ro.confirmed_fraction);
}

TEST(Session, ContinuationFirstReconstructsAndSavesHashes) {
  Rng rng(12);
  Bytes f_old = SynthSourceFile(rng, 80000);
  EditProfile ep;
  ep.num_edits = 20;
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  SyncConfig two_phase;
  two_phase.continuation_first = true;
  FileSyncResult r = MustSync(f_old, f_new, two_phase);
  EXPECT_EQ(r.reconstructed, f_new);

  SyncConfig one_phase;
  one_phase.continuation_first = false;
  FileSyncResult r1 = MustSync(f_old, f_new, one_phase);
  // The two-phase variant trades roundtrips for (at most modest) hash
  // savings; it must not send more server->client map data.
  EXPECT_LE(r.map_server_to_client_bytes,
            r1.map_server_to_client_bytes + 64);
  EXPECT_GE(r.stats.roundtrips, r1.stats.roundtrips);
}

TEST(Session, ContinuationFirstAcrossFuzzPairs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Bytes f_old = SynthSourceFile(rng, 1000 + rng.Uniform(40000));
    EditProfile ep;
    ep.num_edits = static_cast<int>(rng.Uniform(25));
    Bytes f_new = ApplyEdits(f_old, ep, rng);
    SyncConfig config;
    config.continuation_first = true;
    config.min_continuation_block = 8;
    FileSyncResult r = MustSync(f_old, f_new, config);
    EXPECT_EQ(r.reconstructed, f_new) << "seed=" << seed;
  }
}

TEST(Session, InvalidConfigRejected) {
  SimulatedChannel channel;
  Bytes a = ToBytes("a");
  SyncConfig bad;
  bad.start_block_size = 1000;  // not a power of two
  EXPECT_FALSE(SynchronizeFile(a, a, bad, channel).ok());

  SyncConfig bad2;
  bad2.min_continuation_block = 0;
  SimulatedChannel ch2;
  EXPECT_FALSE(SynchronizeFile(a, a, bad2, ch2).ok());
}

TEST(SessionTrace, InvariantsHold) {
  Rng rng(13);
  Bytes f_old = SynthSourceFile(rng, 60000);
  EditProfile ep;
  ep.num_edits = 15;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;
  FileSyncResult r = MustSync(f_old, f_new, config);

  ASSERT_FALSE(r.trace.empty());
  uint64_t prev_min = ~uint64_t{0};
  for (const RoundTrace& t : r.trace) {
    uint32_t planned =
        t.continuation_hashes + t.global_hashes + t.derived_hashes;
    EXPECT_GT(planned, 0u);
    EXPECT_LE(t.candidates, planned);
    EXPECT_LE(t.confirmed, t.candidates);
    EXPECT_GE(t.max_block, t.min_block);
    EXPECT_LE(t.HarvestRate(), 1.0);
    // Block sizes shrink (not strictly: reactivated blocks may be larger,
    // but never above the start size).
    EXPECT_LE(t.max_block, config.start_block_size);
    prev_min = std::min(prev_min, t.min_block);
  }
  // The recursion reached small blocks.
  EXPECT_LE(prev_min, 2 * config.min_block_size);
  // Overall, something was confirmed (files are similar).
  uint32_t total_confirmed = 0;
  for (const RoundTrace& t : r.trace) {
    total_confirmed += t.confirmed;
  }
  EXPECT_GT(total_confirmed, 0u);
}

TEST(SessionTrace, ContinuationHarvestBeatsGlobalOnSimilarFiles) {
  // Paper Section 6.2: blocks that qualify for continuation hashes have a
  // high harvest rate, which is why tiny continuation hashes pay off.
  Rng rng(14);
  Bytes f_old = SynthSourceFile(rng, 120000);
  EditProfile ep;
  ep.num_edits = 6;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;
  config.min_continuation_block = 8;
  FileSyncResult r = MustSync(f_old, f_new, config);

  uint64_t cont_planned = 0, cont_confirmed = 0;
  for (const RoundTrace& t : r.trace) {
    if (t.continuation_hashes > 0 && t.global_hashes == 0 &&
        t.derived_hashes == 0) {
      cont_planned += t.continuation_hashes;
      cont_confirmed += t.confirmed;
    }
  }
  if (cont_planned > 10) {
    EXPECT_GT(static_cast<double>(cont_confirmed) / cont_planned, 0.3);
  }
}

TEST(SessionRobustness, TamperedMessagesNeverCrash) {
  // Any corruption must surface as a Status error, a fallback transfer,
  // or (if the flipped bits were immaterial) a correct result -- never a
  // crash or a silently wrong file.
  Rng rng(15);
  Bytes f_old = SynthSourceFile(rng, 30000);
  EditProfile ep;
  ep.num_edits = 8;
  Bytes f_new = ApplyEdits(f_old, ep, rng);
  SyncConfig config;

  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng trng(seed);
    uint64_t target_msg = trng.Uniform(20);
    uint64_t count = 0;
    SimulatedChannel channel;
    channel.SetTamper([&](SimulatedChannel::Direction, Bytes& msg) {
      if (count++ == target_msg && !msg.empty()) {
        msg[trng.Uniform(msg.size())] ^=
            static_cast<uint8_t>(1 + trng.Uniform(255));
      }
    });
    auto r = SynchronizeFile(f_old, f_new, config, channel);
    if (r.ok()) {
      // If the session claims success, the result must be right or the
      // corruption must have been absorbed by the fallback path.
      EXPECT_EQ(r->reconstructed, f_new) << "seed=" << seed;
    }
  }
}

class SessionParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(SessionParamSweep, ReconstructsExactly) {
  auto [seed, min_block, group_size, decomposable] = GetParam();
  Rng rng(seed);
  size_t size = 3000 + rng.Uniform(60000);
  Bytes f_old = SynthSourceFile(rng, size);
  EditProfile ep;
  ep.num_edits = static_cast<int>(rng.Uniform(40));
  ep.locality = rng.NextDouble();
  Bytes f_new = ApplyEdits(f_old, ep, rng);

  SyncConfig config;
  config.min_block_size = min_block;
  config.min_continuation_block = std::min(16u, config.min_block_size);
  config.verify.group_size = group_size;
  config.use_decomposable = decomposable;
  FileSyncResult r = MustSync(f_old, f_new, config);
  EXPECT_EQ(r.reconstructed, f_new);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SessionParamSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(32, 64, 256),
                       ::testing::Values(1, 8),
                       ::testing::Bool()));

}  // namespace
}  // namespace fsx
