# Empty compiler generated dependencies file for ablation_reconcile.
# This may be replaced when dependencies are built.
