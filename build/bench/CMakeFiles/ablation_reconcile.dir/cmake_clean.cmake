file(REMOVE_RECURSE
  "CMakeFiles/ablation_reconcile.dir/ablation_reconcile.cc.o"
  "CMakeFiles/ablation_reconcile.dir/ablation_reconcile.cc.o.d"
  "ablation_reconcile"
  "ablation_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
