# Empty compiler generated dependencies file for ablation_bundle.
# This may be replaced when dependencies are built.
