file(REMOVE_RECURSE
  "CMakeFiles/ablation_bundle.dir/ablation_bundle.cc.o"
  "CMakeFiles/ablation_bundle.dir/ablation_bundle.cc.o.d"
  "ablation_bundle"
  "ablation_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
