# Empty compiler generated dependencies file for ablation_oneway.
# This may be replaced when dependencies are built.
