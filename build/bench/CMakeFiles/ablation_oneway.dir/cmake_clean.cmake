file(REMOVE_RECURSE
  "CMakeFiles/ablation_oneway.dir/ablation_oneway.cc.o"
  "CMakeFiles/ablation_oneway.dir/ablation_oneway.cc.o.d"
  "ablation_oneway"
  "ablation_oneway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oneway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
