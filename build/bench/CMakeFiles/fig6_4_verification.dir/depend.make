# Empty dependencies file for fig6_4_verification.
# This may be replaced when dependencies are built.
