file(REMOVE_RECURSE
  "CMakeFiles/fig6_4_verification.dir/fig6_4_verification.cc.o"
  "CMakeFiles/fig6_4_verification.dir/fig6_4_verification.cc.o.d"
  "fig6_4_verification"
  "fig6_4_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_4_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
