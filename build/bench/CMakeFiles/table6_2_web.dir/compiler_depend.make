# Empty compiler generated dependencies file for table6_2_web.
# This may be replaced when dependencies are built.
