file(REMOVE_RECURSE
  "CMakeFiles/table6_2_web.dir/table6_2_web.cc.o"
  "CMakeFiles/table6_2_web.dir/table6_2_web.cc.o.d"
  "table6_2_web"
  "table6_2_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_2_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
