file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_continuation.dir/fig6_3_continuation.cc.o"
  "CMakeFiles/fig6_3_continuation.dir/fig6_3_continuation.cc.o.d"
  "fig6_3_continuation"
  "fig6_3_continuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_continuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
