# Empty compiler generated dependencies file for fig6_3_continuation.
# This may be replaced when dependencies are built.
