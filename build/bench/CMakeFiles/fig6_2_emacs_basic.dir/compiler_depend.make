# Empty compiler generated dependencies file for fig6_2_emacs_basic.
# This may be replaced when dependencies are built.
