file(REMOVE_RECURSE
  "CMakeFiles/fig6_2_emacs_basic.dir/fig6_2_emacs_basic.cc.o"
  "CMakeFiles/fig6_2_emacs_basic.dir/fig6_2_emacs_basic.cc.o.d"
  "fig6_2_emacs_basic"
  "fig6_2_emacs_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_emacs_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
