# Empty dependencies file for table6_1_best.
# This may be replaced when dependencies are built.
