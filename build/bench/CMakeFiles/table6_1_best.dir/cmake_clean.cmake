file(REMOVE_RECURSE
  "CMakeFiles/table6_1_best.dir/table6_1_best.cc.o"
  "CMakeFiles/table6_1_best.dir/table6_1_best.cc.o.d"
  "table6_1_best"
  "table6_1_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_1_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
