file(REMOVE_RECURSE
  "CMakeFiles/fig6_1_gcc_basic.dir/fig6_1_gcc_basic.cc.o"
  "CMakeFiles/fig6_1_gcc_basic.dir/fig6_1_gcc_basic.cc.o.d"
  "fig6_1_gcc_basic"
  "fig6_1_gcc_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_gcc_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
