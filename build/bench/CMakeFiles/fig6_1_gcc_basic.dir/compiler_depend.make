# Empty compiler generated dependencies file for fig6_1_gcc_basic.
# This may be replaced when dependencies are built.
