# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("fsync/util")
subdirs("fsync/hash")
subdirs("fsync/compress")
subdirs("fsync/delta")
subdirs("fsync/net")
subdirs("fsync/cdc")
subdirs("fsync/multiround")
subdirs("fsync/reconcile")
subdirs("fsync/zsync")
subdirs("fsync/rsync")
subdirs("fsync/core")
subdirs("fsync/workload")
subdirs("fsync/store")
