# Empty dependencies file for fsync_workload.
# This may be replaced when dependencies are built.
