file(REMOVE_RECURSE
  "libfsync_workload.a"
)
