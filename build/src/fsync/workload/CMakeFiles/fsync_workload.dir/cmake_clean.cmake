file(REMOVE_RECURSE
  "CMakeFiles/fsync_workload.dir/bundle.cc.o"
  "CMakeFiles/fsync_workload.dir/bundle.cc.o.d"
  "CMakeFiles/fsync_workload.dir/edits.cc.o"
  "CMakeFiles/fsync_workload.dir/edits.cc.o.d"
  "CMakeFiles/fsync_workload.dir/release.cc.o"
  "CMakeFiles/fsync_workload.dir/release.cc.o.d"
  "CMakeFiles/fsync_workload.dir/text_synth.cc.o"
  "CMakeFiles/fsync_workload.dir/text_synth.cc.o.d"
  "CMakeFiles/fsync_workload.dir/web.cc.o"
  "CMakeFiles/fsync_workload.dir/web.cc.o.d"
  "libfsync_workload.a"
  "libfsync_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
