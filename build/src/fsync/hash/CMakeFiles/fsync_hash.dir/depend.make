# Empty dependencies file for fsync_hash.
# This may be replaced when dependencies are built.
