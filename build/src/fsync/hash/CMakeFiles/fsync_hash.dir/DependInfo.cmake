
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsync/hash/fingerprint.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/fingerprint.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/fingerprint.cc.o.d"
  "/root/repo/src/fsync/hash/karp_rabin.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/karp_rabin.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/karp_rabin.cc.o.d"
  "/root/repo/src/fsync/hash/md4.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/md4.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/md4.cc.o.d"
  "/root/repo/src/fsync/hash/md5.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/md5.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/md5.cc.o.d"
  "/root/repo/src/fsync/hash/rolling_adler.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/rolling_adler.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/rolling_adler.cc.o.d"
  "/root/repo/src/fsync/hash/tabled_adler.cc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/tabled_adler.cc.o" "gcc" "src/fsync/hash/CMakeFiles/fsync_hash.dir/tabled_adler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsync/util/CMakeFiles/fsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
