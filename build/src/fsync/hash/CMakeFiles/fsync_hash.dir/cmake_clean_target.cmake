file(REMOVE_RECURSE
  "libfsync_hash.a"
)
