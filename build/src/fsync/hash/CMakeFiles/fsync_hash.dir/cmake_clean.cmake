file(REMOVE_RECURSE
  "CMakeFiles/fsync_hash.dir/fingerprint.cc.o"
  "CMakeFiles/fsync_hash.dir/fingerprint.cc.o.d"
  "CMakeFiles/fsync_hash.dir/karp_rabin.cc.o"
  "CMakeFiles/fsync_hash.dir/karp_rabin.cc.o.d"
  "CMakeFiles/fsync_hash.dir/md4.cc.o"
  "CMakeFiles/fsync_hash.dir/md4.cc.o.d"
  "CMakeFiles/fsync_hash.dir/md5.cc.o"
  "CMakeFiles/fsync_hash.dir/md5.cc.o.d"
  "CMakeFiles/fsync_hash.dir/rolling_adler.cc.o"
  "CMakeFiles/fsync_hash.dir/rolling_adler.cc.o.d"
  "CMakeFiles/fsync_hash.dir/tabled_adler.cc.o"
  "CMakeFiles/fsync_hash.dir/tabled_adler.cc.o.d"
  "libfsync_hash.a"
  "libfsync_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
