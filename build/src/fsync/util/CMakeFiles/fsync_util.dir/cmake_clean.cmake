file(REMOVE_RECURSE
  "CMakeFiles/fsync_util.dir/bit_io.cc.o"
  "CMakeFiles/fsync_util.dir/bit_io.cc.o.d"
  "CMakeFiles/fsync_util.dir/hex.cc.o"
  "CMakeFiles/fsync_util.dir/hex.cc.o.d"
  "CMakeFiles/fsync_util.dir/random.cc.o"
  "CMakeFiles/fsync_util.dir/random.cc.o.d"
  "CMakeFiles/fsync_util.dir/status.cc.o"
  "CMakeFiles/fsync_util.dir/status.cc.o.d"
  "libfsync_util.a"
  "libfsync_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
