# Empty compiler generated dependencies file for fsync_util.
# This may be replaced when dependencies are built.
