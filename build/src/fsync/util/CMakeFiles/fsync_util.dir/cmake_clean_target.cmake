file(REMOVE_RECURSE
  "libfsync_util.a"
)
