
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsync/util/bit_io.cc" "src/fsync/util/CMakeFiles/fsync_util.dir/bit_io.cc.o" "gcc" "src/fsync/util/CMakeFiles/fsync_util.dir/bit_io.cc.o.d"
  "/root/repo/src/fsync/util/hex.cc" "src/fsync/util/CMakeFiles/fsync_util.dir/hex.cc.o" "gcc" "src/fsync/util/CMakeFiles/fsync_util.dir/hex.cc.o.d"
  "/root/repo/src/fsync/util/random.cc" "src/fsync/util/CMakeFiles/fsync_util.dir/random.cc.o" "gcc" "src/fsync/util/CMakeFiles/fsync_util.dir/random.cc.o.d"
  "/root/repo/src/fsync/util/status.cc" "src/fsync/util/CMakeFiles/fsync_util.dir/status.cc.o" "gcc" "src/fsync/util/CMakeFiles/fsync_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
