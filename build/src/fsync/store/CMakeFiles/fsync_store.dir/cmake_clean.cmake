file(REMOVE_RECURSE
  "CMakeFiles/fsync_store.dir/fsstore.cc.o"
  "CMakeFiles/fsync_store.dir/fsstore.cc.o.d"
  "libfsync_store.a"
  "libfsync_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
