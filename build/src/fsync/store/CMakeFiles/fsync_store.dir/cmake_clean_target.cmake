file(REMOVE_RECURSE
  "libfsync_store.a"
)
