# Empty dependencies file for fsync_store.
# This may be replaced when dependencies are built.
