file(REMOVE_RECURSE
  "CMakeFiles/fsync_compress.dir/codec.cc.o"
  "CMakeFiles/fsync_compress.dir/codec.cc.o.d"
  "CMakeFiles/fsync_compress.dir/huffman.cc.o"
  "CMakeFiles/fsync_compress.dir/huffman.cc.o.d"
  "CMakeFiles/fsync_compress.dir/lz77.cc.o"
  "CMakeFiles/fsync_compress.dir/lz77.cc.o.d"
  "CMakeFiles/fsync_compress.dir/range_coder.cc.o"
  "CMakeFiles/fsync_compress.dir/range_coder.cc.o.d"
  "libfsync_compress.a"
  "libfsync_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
