file(REMOVE_RECURSE
  "libfsync_compress.a"
)
