
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsync/compress/codec.cc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/codec.cc.o" "gcc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/codec.cc.o.d"
  "/root/repo/src/fsync/compress/huffman.cc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/huffman.cc.o" "gcc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/huffman.cc.o.d"
  "/root/repo/src/fsync/compress/lz77.cc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/lz77.cc.o" "gcc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/lz77.cc.o.d"
  "/root/repo/src/fsync/compress/range_coder.cc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/range_coder.cc.o" "gcc" "src/fsync/compress/CMakeFiles/fsync_compress.dir/range_coder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsync/util/CMakeFiles/fsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
