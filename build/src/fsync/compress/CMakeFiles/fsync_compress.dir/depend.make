# Empty dependencies file for fsync_compress.
# This may be replaced when dependencies are built.
