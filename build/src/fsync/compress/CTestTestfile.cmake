# CMake generated Testfile for 
# Source directory: /root/repo/src/fsync/compress
# Build directory: /root/repo/build/src/fsync/compress
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
