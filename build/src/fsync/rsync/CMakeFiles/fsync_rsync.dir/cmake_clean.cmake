file(REMOVE_RECURSE
  "CMakeFiles/fsync_rsync.dir/inplace.cc.o"
  "CMakeFiles/fsync_rsync.dir/inplace.cc.o.d"
  "CMakeFiles/fsync_rsync.dir/rsync.cc.o"
  "CMakeFiles/fsync_rsync.dir/rsync.cc.o.d"
  "libfsync_rsync.a"
  "libfsync_rsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_rsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
