# Empty dependencies file for fsync_rsync.
# This may be replaced when dependencies are built.
