file(REMOVE_RECURSE
  "libfsync_rsync.a"
)
