file(REMOVE_RECURSE
  "CMakeFiles/fsync_multiround.dir/multiround.cc.o"
  "CMakeFiles/fsync_multiround.dir/multiround.cc.o.d"
  "libfsync_multiround.a"
  "libfsync_multiround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_multiround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
