file(REMOVE_RECURSE
  "libfsync_multiround.a"
)
