# Empty compiler generated dependencies file for fsync_multiround.
# This may be replaced when dependencies are built.
