file(REMOVE_RECURSE
  "CMakeFiles/fsync_reconcile.dir/merkle.cc.o"
  "CMakeFiles/fsync_reconcile.dir/merkle.cc.o.d"
  "libfsync_reconcile.a"
  "libfsync_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
