# Empty dependencies file for fsync_reconcile.
# This may be replaced when dependencies are built.
