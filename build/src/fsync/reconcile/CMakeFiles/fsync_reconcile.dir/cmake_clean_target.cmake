file(REMOVE_RECURSE
  "libfsync_reconcile.a"
)
