# CMake generated Testfile for 
# Source directory: /root/repo/src/fsync/reconcile
# Build directory: /root/repo/build/src/fsync/reconcile
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
