file(REMOVE_RECURSE
  "CMakeFiles/fsync_net.dir/channel.cc.o"
  "CMakeFiles/fsync_net.dir/channel.cc.o.d"
  "libfsync_net.a"
  "libfsync_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
