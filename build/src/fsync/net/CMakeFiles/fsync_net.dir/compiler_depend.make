# Empty compiler generated dependencies file for fsync_net.
# This may be replaced when dependencies are built.
