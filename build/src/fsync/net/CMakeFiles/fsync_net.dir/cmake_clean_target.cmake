file(REMOVE_RECURSE
  "libfsync_net.a"
)
