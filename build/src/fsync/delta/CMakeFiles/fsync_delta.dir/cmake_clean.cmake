file(REMOVE_RECURSE
  "CMakeFiles/fsync_delta.dir/bsdiff.cc.o"
  "CMakeFiles/fsync_delta.dir/bsdiff.cc.o.d"
  "CMakeFiles/fsync_delta.dir/delta.cc.o"
  "CMakeFiles/fsync_delta.dir/delta.cc.o.d"
  "CMakeFiles/fsync_delta.dir/suffix_array.cc.o"
  "CMakeFiles/fsync_delta.dir/suffix_array.cc.o.d"
  "CMakeFiles/fsync_delta.dir/vcdiff.cc.o"
  "CMakeFiles/fsync_delta.dir/vcdiff.cc.o.d"
  "CMakeFiles/fsync_delta.dir/zd.cc.o"
  "CMakeFiles/fsync_delta.dir/zd.cc.o.d"
  "libfsync_delta.a"
  "libfsync_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
