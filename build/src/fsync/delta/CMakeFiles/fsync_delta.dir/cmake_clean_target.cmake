file(REMOVE_RECURSE
  "libfsync_delta.a"
)
