
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsync/delta/bsdiff.cc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/bsdiff.cc.o" "gcc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/bsdiff.cc.o.d"
  "/root/repo/src/fsync/delta/delta.cc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/delta.cc.o" "gcc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/delta.cc.o.d"
  "/root/repo/src/fsync/delta/suffix_array.cc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/suffix_array.cc.o" "gcc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/suffix_array.cc.o.d"
  "/root/repo/src/fsync/delta/vcdiff.cc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/vcdiff.cc.o" "gcc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/vcdiff.cc.o.d"
  "/root/repo/src/fsync/delta/zd.cc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/zd.cc.o" "gcc" "src/fsync/delta/CMakeFiles/fsync_delta.dir/zd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsync/compress/CMakeFiles/fsync_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/util/CMakeFiles/fsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
