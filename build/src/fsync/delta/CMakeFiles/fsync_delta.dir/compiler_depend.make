# Empty compiler generated dependencies file for fsync_delta.
# This may be replaced when dependencies are built.
