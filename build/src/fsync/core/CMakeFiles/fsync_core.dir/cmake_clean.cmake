file(REMOVE_RECURSE
  "CMakeFiles/fsync_core.dir/adaptive.cc.o"
  "CMakeFiles/fsync_core.dir/adaptive.cc.o.d"
  "CMakeFiles/fsync_core.dir/block_ledger.cc.o"
  "CMakeFiles/fsync_core.dir/block_ledger.cc.o.d"
  "CMakeFiles/fsync_core.dir/broadcast.cc.o"
  "CMakeFiles/fsync_core.dir/broadcast.cc.o.d"
  "CMakeFiles/fsync_core.dir/collection.cc.o"
  "CMakeFiles/fsync_core.dir/collection.cc.o.d"
  "CMakeFiles/fsync_core.dir/config_io.cc.o"
  "CMakeFiles/fsync_core.dir/config_io.cc.o.d"
  "CMakeFiles/fsync_core.dir/endpoint.cc.o"
  "CMakeFiles/fsync_core.dir/endpoint.cc.o.d"
  "CMakeFiles/fsync_core.dir/session.cc.o"
  "CMakeFiles/fsync_core.dir/session.cc.o.d"
  "libfsync_core.a"
  "libfsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
