file(REMOVE_RECURSE
  "libfsync_core.a"
)
