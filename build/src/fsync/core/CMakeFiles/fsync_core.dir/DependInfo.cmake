
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsync/core/adaptive.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/adaptive.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/adaptive.cc.o.d"
  "/root/repo/src/fsync/core/block_ledger.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/block_ledger.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/block_ledger.cc.o.d"
  "/root/repo/src/fsync/core/broadcast.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/broadcast.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/broadcast.cc.o.d"
  "/root/repo/src/fsync/core/collection.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/collection.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/collection.cc.o.d"
  "/root/repo/src/fsync/core/config_io.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/config_io.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/config_io.cc.o.d"
  "/root/repo/src/fsync/core/endpoint.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/endpoint.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/endpoint.cc.o.d"
  "/root/repo/src/fsync/core/session.cc" "src/fsync/core/CMakeFiles/fsync_core.dir/session.cc.o" "gcc" "src/fsync/core/CMakeFiles/fsync_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsync/cdc/CMakeFiles/fsync_cdc.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/multiround/CMakeFiles/fsync_multiround.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/delta/CMakeFiles/fsync_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/hash/CMakeFiles/fsync_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/net/CMakeFiles/fsync_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/rsync/CMakeFiles/fsync_rsync.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/compress/CMakeFiles/fsync_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/util/CMakeFiles/fsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
