# Empty compiler generated dependencies file for fsync_core.
# This may be replaced when dependencies are built.
