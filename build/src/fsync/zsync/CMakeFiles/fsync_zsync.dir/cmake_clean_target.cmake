file(REMOVE_RECURSE
  "libfsync_zsync.a"
)
