# Empty compiler generated dependencies file for fsync_zsync.
# This may be replaced when dependencies are built.
