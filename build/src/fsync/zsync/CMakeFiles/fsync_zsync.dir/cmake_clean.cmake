file(REMOVE_RECURSE
  "CMakeFiles/fsync_zsync.dir/zsync.cc.o"
  "CMakeFiles/fsync_zsync.dir/zsync.cc.o.d"
  "libfsync_zsync.a"
  "libfsync_zsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_zsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
