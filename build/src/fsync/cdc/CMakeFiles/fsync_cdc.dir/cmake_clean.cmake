file(REMOVE_RECURSE
  "CMakeFiles/fsync_cdc.dir/cdc_sync.cc.o"
  "CMakeFiles/fsync_cdc.dir/cdc_sync.cc.o.d"
  "CMakeFiles/fsync_cdc.dir/chunker.cc.o"
  "CMakeFiles/fsync_cdc.dir/chunker.cc.o.d"
  "libfsync_cdc.a"
  "libfsync_cdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsync_cdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
