file(REMOVE_RECURSE
  "libfsync_cdc.a"
)
