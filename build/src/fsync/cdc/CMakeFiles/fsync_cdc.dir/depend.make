# Empty dependencies file for fsync_cdc.
# This may be replaced when dependencies are built.
