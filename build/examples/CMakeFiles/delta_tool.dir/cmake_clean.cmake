file(REMOVE_RECURSE
  "CMakeFiles/delta_tool.dir/delta_tool.cpp.o"
  "CMakeFiles/delta_tool.dir/delta_tool.cpp.o.d"
  "delta_tool"
  "delta_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
