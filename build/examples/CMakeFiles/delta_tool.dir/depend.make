# Empty dependencies file for delta_tool.
# This may be replaced when dependencies are built.
