# Empty compiler generated dependencies file for web_sync.
# This may be replaced when dependencies are built.
