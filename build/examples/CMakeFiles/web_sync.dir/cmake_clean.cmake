file(REMOVE_RECURSE
  "CMakeFiles/web_sync.dir/web_sync.cpp.o"
  "CMakeFiles/web_sync.dir/web_sync.cpp.o.d"
  "web_sync"
  "web_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
