# Empty compiler generated dependencies file for collection_mirror.
# This may be replaced when dependencies are built.
