file(REMOVE_RECURSE
  "CMakeFiles/collection_mirror.dir/collection_mirror.cpp.o"
  "CMakeFiles/collection_mirror.dir/collection_mirror.cpp.o.d"
  "collection_mirror"
  "collection_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collection_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
