file(REMOVE_RECURSE
  "CMakeFiles/fsxsync.dir/fsxsync.cpp.o"
  "CMakeFiles/fsxsync.dir/fsxsync.cpp.o.d"
  "fsxsync"
  "fsxsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsxsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
