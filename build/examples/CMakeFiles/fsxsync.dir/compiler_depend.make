# Empty compiler generated dependencies file for fsxsync.
# This may be replaced when dependencies are built.
