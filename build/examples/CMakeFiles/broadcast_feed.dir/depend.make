# Empty dependencies file for broadcast_feed.
# This may be replaced when dependencies are built.
