file(REMOVE_RECURSE
  "CMakeFiles/broadcast_feed.dir/broadcast_feed.cpp.o"
  "CMakeFiles/broadcast_feed.dir/broadcast_feed.cpp.o.d"
  "broadcast_feed"
  "broadcast_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
