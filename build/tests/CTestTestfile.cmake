# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_range_coder[1]_include.cmake")
include("/root/repo/build/tests/test_delta[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rsync[1]_include.cmake")
include("/root/repo/build/tests/test_cdc[1]_include.cmake")
include("/root/repo/build/tests/test_multiround[1]_include.cmake")
include("/root/repo/build/tests/test_reconcile[1]_include.cmake")
include("/root/repo/build/tests/test_zsync[1]_include.cmake")
include("/root/repo/build/tests/test_inplace[1]_include.cmake")
include("/root/repo/build/tests/test_ledger[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_endpoint[1]_include.cmake")
include("/root/repo/build/tests/test_collection[1]_include.cmake")
include("/root/repo/build/tests/test_broadcast[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_config_io[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_deep_property[1]_include.cmake")
include("/root/repo/build/tests/test_store[1]_include.cmake")
