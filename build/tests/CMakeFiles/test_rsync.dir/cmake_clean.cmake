file(REMOVE_RECURSE
  "CMakeFiles/test_rsync.dir/rsync_test.cc.o"
  "CMakeFiles/test_rsync.dir/rsync_test.cc.o.d"
  "test_rsync"
  "test_rsync.pdb"
  "test_rsync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
