# Empty compiler generated dependencies file for test_rsync.
# This may be replaced when dependencies are built.
