
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/test_net.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsync/store/CMakeFiles/fsync_store.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/core/CMakeFiles/fsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/workload/CMakeFiles/fsync_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/rsync/CMakeFiles/fsync_rsync.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/cdc/CMakeFiles/fsync_cdc.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/multiround/CMakeFiles/fsync_multiround.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/reconcile/CMakeFiles/fsync_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/zsync/CMakeFiles/fsync_zsync.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/delta/CMakeFiles/fsync_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/compress/CMakeFiles/fsync_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/hash/CMakeFiles/fsync_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/net/CMakeFiles/fsync_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fsync/util/CMakeFiles/fsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
