# Empty compiler generated dependencies file for test_range_coder.
# This may be replaced when dependencies are built.
