file(REMOVE_RECURSE
  "CMakeFiles/test_zsync.dir/zsync_test.cc.o"
  "CMakeFiles/test_zsync.dir/zsync_test.cc.o.d"
  "test_zsync"
  "test_zsync.pdb"
  "test_zsync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
