# Empty dependencies file for test_zsync.
# This may be replaced when dependencies are built.
