file(REMOVE_RECURSE
  "CMakeFiles/test_cdc.dir/cdc_test.cc.o"
  "CMakeFiles/test_cdc.dir/cdc_test.cc.o.d"
  "test_cdc"
  "test_cdc.pdb"
  "test_cdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
