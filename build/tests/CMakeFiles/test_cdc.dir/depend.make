# Empty dependencies file for test_cdc.
# This may be replaced when dependencies are built.
