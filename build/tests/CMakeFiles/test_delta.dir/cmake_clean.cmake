file(REMOVE_RECURSE
  "CMakeFiles/test_delta.dir/delta_test.cc.o"
  "CMakeFiles/test_delta.dir/delta_test.cc.o.d"
  "test_delta"
  "test_delta.pdb"
  "test_delta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
