file(REMOVE_RECURSE
  "CMakeFiles/test_deep_property.dir/deep_property_test.cc.o"
  "CMakeFiles/test_deep_property.dir/deep_property_test.cc.o.d"
  "test_deep_property"
  "test_deep_property.pdb"
  "test_deep_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
