file(REMOVE_RECURSE
  "CMakeFiles/test_multiround.dir/multiround_test.cc.o"
  "CMakeFiles/test_multiround.dir/multiround_test.cc.o.d"
  "test_multiround"
  "test_multiround.pdb"
  "test_multiround[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
