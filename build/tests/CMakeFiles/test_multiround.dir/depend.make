# Empty dependencies file for test_multiround.
# This may be replaced when dependencies are built.
