file(REMOVE_RECURSE
  "CMakeFiles/test_broadcast.dir/broadcast_test.cc.o"
  "CMakeFiles/test_broadcast.dir/broadcast_test.cc.o.d"
  "test_broadcast"
  "test_broadcast.pdb"
  "test_broadcast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
