// delta_tool: a small command-line differ built on the delta codecs.
//
//   delta_tool encode <reference> <target> <delta-out>   [--vcdiff]
//   delta_tool decode <reference> <delta>  <target-out>  [--vcdiff]
//   delta_tool demo
//
// "demo" runs an in-memory round-trip and prints codec statistics; the
// file modes make the library usable as an xdelta/zdelta-style utility.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "fsync/delta/delta.h"
#include "fsync/util/mapped_file.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace {

using fsx::Bytes;

bool ReadFile(const std::string& path, Bytes& out) {
  auto data = fsx::ReadWholeFile(path);
  if (!data.ok()) {
    return false;
  }
  out = std::move(data).value();
  return true;
}

bool WriteFile(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

int Demo() {
  using namespace fsx;
  Rng rng(7);
  Bytes reference = SynthSourceFile(rng, 500 * 1024);
  EditProfile edits;
  edits.num_edits = 25;
  Bytes target = ApplyEdits(reference, edits, rng);

  std::printf("reference: %zu bytes, target: %zu bytes\n\n",
              reference.size(), target.size());
  struct Row {
    const char* name;
    DeltaCodec codec;
  };
  for (Row row : {Row{"zd (zdelta-style)", DeltaCodec::kZd},
                  Row{"vcdiff-style", DeltaCodec::kVcdiff}}) {
    auto delta = DeltaEncode(row.codec, reference, target);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s encode failed\n", row.name);
      return 1;
    }
    auto back = DeltaDecode(row.codec, reference, *delta);
    bool ok = back.ok() && *back == target;
    std::printf("%-20s delta = %8zu bytes (%.2f%% of target)  %s\n",
                row.name, delta->size(),
                100.0 * delta->size() / target.size(),
                ok ? "round-trip OK" : "ROUND-TRIP FAILED");
    if (!ok) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsx;
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
    return Demo();
  }
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s encode|decode <reference> <in> <out> "
                 "[--vcdiff]\n       %s demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  DeltaCodec codec = DeltaCodec::kZd;
  if (argc >= 6 && std::strcmp(argv[5], "--vcdiff") == 0) {
    codec = DeltaCodec::kVcdiff;
  }
  Bytes reference;
  Bytes input;
  if (!ReadFile(argv[2], reference) || !ReadFile(argv[3], input)) {
    std::fprintf(stderr, "cannot read input files\n");
    return 1;
  }
  StatusOr<Bytes> out = std::strcmp(argv[1], "encode") == 0
                            ? DeltaEncode(codec, reference, input)
                            : DeltaDecode(codec, reference, input);
  if (!out.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", argv[1],
                 out.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(argv[4], *out)) {
    std::fprintf(stderr, "cannot write %s\n", argv[4]);
    return 1;
  }
  std::printf("%s: %zu bytes in, %zu bytes out\n", argv[1], input.size(),
              out->size());
  return 0;
}
