// Mirroring a software release: synchronize a whole source tree from an
// old release to a new one (the paper's gcc/emacs scenario), comparing
// the multi-round protocol against rsync, plain compressed transfer, and
// the delta-compression lower bound.
#include <cstdio>

#include "fsync/core/collection.h"
#include "fsync/workload/release.h"

int main() {
  using namespace fsx;

  ReleaseProfile profile = GccLikeProfile();
  profile.num_files = 80;  // keep the demo quick; bump for bigger runs
  std::printf("generating release pair (%d files)...\n", profile.num_files);
  ReleasePair pair = MakeRelease(profile);

  uint64_t total_new = 0;
  for (const auto& [name, data] : pair.new_release) {
    total_new += data.size();
  }
  std::printf("new release: %d files, %.1f MiB\n\n",
              static_cast<int>(pair.new_release.size()),
              total_new / 1048576.0);

  auto print_row = [&](const char* label, uint64_t bytes,
                       uint64_t roundtrips) {
    std::printf("%-28s %10.1f KiB   %5.2f%% of full   rt=%llu\n", label,
                bytes / 1024.0, 100.0 * bytes / total_new,
                static_cast<unsigned long long>(roundtrips));
  };

  print_row("full transfer",
            CollectionFullTransferBytes(pair.old_release, pair.new_release),
            1);
  print_row("compressed transfer",
            CollectionCompressedTransferBytes(pair.old_release,
                                              pair.new_release),
            1);

  RsyncParams rsync_params;  // classic defaults (700-byte blocks)
  auto rsync_result =
      SyncCollectionRsync(pair.old_release, pair.new_release, rsync_params);
  if (!rsync_result.ok()) {
    std::fprintf(stderr, "rsync failed: %s\n",
                 rsync_result.status().ToString().c_str());
    return 1;
  }
  print_row("rsync (b=700)", rsync_result->stats.total_bytes(),
            rsync_result->stats.roundtrips);

  auto multiround = SyncCollectionMultiround(pair.old_release,
                                             pair.new_release,
                                             MultiroundParams{});
  if (!multiround.ok()) {
    std::fprintf(stderr, "multiround failed: %s\n",
                 multiround.status().ToString().c_str());
    return 1;
  }
  print_row("multiround rsync", multiround->stats.total_bytes(),
            multiround->stats.roundtrips);

  SyncConfig config;
  auto ours = SyncCollection(pair.old_release, pair.new_release, config);
  if (!ours.ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 ours.status().ToString().c_str());
    return 1;
  }
  print_row("this library", ours->stats.total_bytes(),
            ours->stats.roundtrips);

  auto bound = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                    DeltaCodec::kZd);
  if (bound.ok()) {
    print_row("delta lower bound (zd)", *bound, 1);
  }

  std::printf("\nverification: %s; %llu/%llu files unchanged\n",
              ours->reconstructed == pair.new_release ? "all files match"
                                                      : "MISMATCH",
              static_cast<unsigned long long>(ours->files_unchanged),
              static_cast<unsigned long long>(ours->files_total));
  return ours->reconstructed == pair.new_release ? 0 : 1;
}
