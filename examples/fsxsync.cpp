// fsxsync: synchronize a destination directory tree to match a source
// tree using the multi-round protocol, and report what the transfer
// would have cost over a network (both endpoints run in-process; the
// byte accounting is exact, the link is simulated).
//
//   fsxsync <source-dir> <dest-dir> [--method fsx|rsync|cdc|multiround]
//           [--dry-run] [--keep-extra]
//   fsxsync verify <dir>      # check a tree against its manifest
//   fsxsync demo
//
// Files present only in <dest-dir> are deleted (mirror semantics) unless
// --keep-extra is given. A manifest is written to the destination so a
// later `fsxsync verify` can spot local modifications cheaply.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <fstream>

#include "fsync/core/adaptive.h"
#include "fsync/core/config_io.h"
#include "fsync/core/collection.h"
#include "fsync/store/fsstore.h"
#include "fsync/workload/release.h"

namespace {

using fsx::Collection;

void PrintStats(const char* method, const fsx::CollectionSyncResult& r,
                uint64_t tree_bytes) {
  std::printf("method:        %s\n", method);
  std::printf("files:         %llu total, %llu unchanged, %llu new\n",
              static_cast<unsigned long long>(r.files_total),
              static_cast<unsigned long long>(r.files_unchanged),
              static_cast<unsigned long long>(r.files_new));
  std::printf("traffic:       %.1f KiB (%.2f%% of tree)\n",
              r.stats.total_bytes() / 1024.0,
              tree_bytes ? 100.0 * r.stats.total_bytes() / tree_bytes : 0.0);
  std::printf("roundtrips:    %llu (batched across files)\n",
              static_cast<unsigned long long>(r.stats.roundtrips));
}

int RunSync(const std::string& src_dir, const std::string& dst_dir,
            const std::string& method, bool dry_run, bool keep_extra,
            const std::string& config_path = "") {
  auto server_tree = fsx::LoadTree(src_dir);
  if (!server_tree.ok()) {
    std::fprintf(stderr, "source: %s\n",
                 server_tree.status().ToString().c_str());
    return 1;
  }
  auto client_tree = fsx::LoadTree(dst_dir);
  if (!client_tree.ok()) {
    std::fprintf(stderr, "dest: %s\n",
                 client_tree.status().ToString().c_str());
    return 1;
  }
  uint64_t tree_bytes = 0;
  for (const auto& [name, data] : *server_tree) {
    tree_bytes += data.size();
  }

  fsx::StatusOr<fsx::CollectionSyncResult> result =
      fsx::Status::Internal("unset");
  if (method == "rsync") {
    result = SyncCollectionRsync(*client_tree, *server_tree,
                                 fsx::RsyncParams{});
  } else if (method == "cdc") {
    result = SyncCollectionCdc(*client_tree, *server_tree,
                               fsx::CdcSyncParams{});
  } else if (method == "multiround") {
    result = SyncCollectionMultiround(*client_tree, *server_tree,
                                      fsx::MultiroundParams{});
  } else if (method == "fsx") {
    fsx::SyncConfig config = fsx::ChooseConfig(32 * 1024, 32 * 1024);
    if (!config_path.empty()) {
      // The paper's "parameter file": full control over every round.
      std::ifstream in(config_path);
      if (!in) {
        std::fprintf(stderr, "cannot read config %s\n",
                     config_path.c_str());
        return 1;
      }
      std::string text{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
      auto parsed = fsx::ParseSyncConfig(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      config = *parsed;
    }
    fsx::SimulatedChannel channel;
    result = SyncCollectionBatched(*client_tree, *server_tree, config,
                                   channel);
  } else {
    std::fprintf(stderr, "unknown method '%s' (fsx|rsync|cdc|multiround)\n",
                 method.c_str());
    return 2;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  PrintStats(method.c_str(), *result, tree_bytes);
  if (result->reconstructed != *server_tree) {
    std::fprintf(stderr, "internal error: reconstruction mismatch\n");
    return 1;
  }
  if (dry_run) {
    std::printf("dry run: destination not modified\n");
    return 0;
  }
  fsx::Status st = fsx::StoreTree(dst_dir, result->reconstructed,
                                  /*delete_extra=*/!keep_extra,
                                  /*write_manifest=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("destination updated (manifest written)\n");
  return 0;
}

int Verify(const std::string& dir) {
  auto dirty = fsx::VerifyTree(dir);
  if (!dirty.ok()) {
    std::fprintf(stderr, "verify failed: %s\n",
                 dirty.status().ToString().c_str());
    return 1;
  }
  if (dirty->empty()) {
    std::printf("%s: clean (matches manifest)\n", dir.c_str());
    return 0;
  }
  std::printf("%s: %zu file(s) differ from the manifest:\n", dir.c_str(),
              dirty->size());
  for (const std::string& name : *dirty) {
    std::printf("  %s\n", name.c_str());
  }
  return 1;
}

int Demo() {
  // Self-contained demo: generate a release pair in temp dirs and sync.
  fsx::ReleaseProfile profile = fsx::GccLikeProfile();
  profile.num_files = 25;
  fsx::ReleasePair pair = fsx::MakeRelease(profile);
  std::filesystem::path base =
      std::filesystem::temp_directory_path() / "fsxsync_demo";
  std::string src = (base / "server").string();
  std::string dst = (base / "client").string();
  if (!fsx::StoreTree(src, pair.new_release, true).ok() ||
      !fsx::StoreTree(dst, pair.old_release, true).ok()) {
    std::fprintf(stderr, "cannot set up demo trees\n");
    return 1;
  }
  std::printf("demo trees under %s\n\n", base.string().c_str());
  int rc = RunSync(src, dst, "fsx", /*dry_run=*/false,
                   /*keep_extra=*/false);
  if (rc != 0) {
    return rc;
  }
  std::printf("\nverifying destination manifest...\n");
  return Verify(dst);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
    return Demo();
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0) {
    return Verify(argv[2]);
  }
  if (argc < 3) {
    std::fprintf(
        stderr,
        "usage: %s <source-dir> <dest-dir> [--method fsx|rsync|cdc|"
        "multiround] [--dry-run] [--keep-extra]\n"
        "       %s verify <dir>\n       %s demo\n",
        argv[0], argv[0], argv[0]);
    return 2;
  }
  std::string method = "fsx";
  std::string config_path;
  bool dry_run = false;
  bool keep_extra = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[++i];
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--keep-extra") == 0) {
      keep_extra = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return RunSync(argv[1], argv[2], method, dry_run, keep_extra,
                 config_path);
}
