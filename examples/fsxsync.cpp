// fsxsync: synchronize a destination directory tree to match a source
// tree using the multi-round protocol, and report what the transfer
// would have cost over a network (both endpoints run in-process; the
// byte accounting is exact, the link is simulated).
//
//   fsxsync <source-dir> <dest-dir> [--method fsx|rsync|cdc|multiround]
//           [--dry-run] [--keep-extra] [--trace]
//           [--metrics-json[=path]] [--cache-bytes=N]
//           [--fault-drop=P] [--fault-corrupt=P] [--retries=N]
//           [--journal] [--recover] [--verify-after-apply]
//   fsxsync verify <dir>      # check a tree against its manifest
//   fsxsync recover <dir>     # resolve a crashed apply's journal
//   fsxsync serve <dir> [--port=N] [--unix=path] [--config <file>]
//           [--cache-bytes=N] [--max-conns=N]
//   fsxsync connect <host:port> <dest-dir> [--unix=path]
//           [--checkpoint-dir=path] [--keep-extra]
//   fsxsync demo
//   fsxsync --features        # CPU features + active dispatch tier
//
// serve/connect swap the simulated link for the real thing: `serve`
// runs the multi-client epoll daemon (fsync/netd/) over the directory
// tree, `connect` synchronizes a destination directory from it. SIGTERM
// or SIGINT on the server triggers a graceful drain: in-flight sessions
// finish, new ones are refused, the process exits once the last client
// completes. `connect --checkpoint-dir` persists per-file session
// checkpoints so a killed client resumes where it left off.
//
// --features reports what the runtime kernel dispatch (fsync/simd/)
// probed on this host and which tier the hot paths will use; the same
// information lands under "dispatch" in --metrics-json. Tiers are pure
// execution knobs — wire bytes never depend on them (FSX_FORCE_SCALAR=1
// pins the portable kernels for A/B comparison).
//
// --cache-bytes=N (fsx method only) runs the server side through the
// content-addressed signature/delta cache (docs/caching.md) with an
// N-byte LRU budget (N=0: unbounded). One CLI run sees little benefit —
// the cache pays off when a long-lived server answers many clients — but
// the flag exercises the exact production code path, never changes the
// wire bytes, and surfaces the cache counters under "cache" in
// --metrics-json.
//
// --journal applies the result through the crash-safe journaled commit
// path (store/apply.h): every file lands via fsync-ordered temp+rename
// guarded by a write-ahead intent journal, files modified concurrently
// are detected, skipped, and reported instead of clobbered, and a crash
// at any point is repaired by `fsxsync recover <dir>` (or the next
// --journal run) to a state where each file is bit-exactly old or new.
// --recover resolves any leftover journal in <dest-dir> before syncing.
// --verify-after-apply re-checks the destination against its freshly
// written manifest before declaring success.
//
// Exit codes: 0 sync applied cleanly; 1 failure; 2 usage error;
// 3 applied cleanly after recovering an interrupted run; 4 applied, but
// some concurrently modified files were skipped (listed on stderr);
// 5 the destination disk filled up (RESOURCE_EXHAUSTED) — the apply
// aborted and rolled back, re-run after freeing space.
// FSX_CRASH_AT=<n> arms a deterministic crash at the n-th durability
// boundary (kill-point sweeps from the CLI; see docs/testing.md).
// FSX_DISK_FAULT=<spec> arms deterministic disk-fault injection on the
// store's vfs seam (e.g. "enospc-after=4096" or "fsync-fail"; see
// store/vfs_fault.h for the grammar and docs/testing.md for the sweep).
//
// --trace streams one line per wire message / protocol round / session
// to stderr as it happens; --metrics-json emits the per-phase byte
// attribution and aggregate metrics as JSON (to stdout, or to the given
// path). Both are host-side observers: they never change what goes over
// the (simulated) wire.
//
// --fault-drop / --fault-corrupt (fsx method only) run the sync over the
// reliable transport with the given per-message Bernoulli loss /
// corruption probability on the simulated link; --retries bounds the
// retransmit attempts before the session fails with UNAVAILABLE. The
// fault seed honors FSX_SEED, and the retransmit counters land in
// --metrics-json under "transport".
//
// Files present only in <dest-dir> are deleted (mirror semantics) unless
// --keep-extra is given. A manifest is written to the destination so a
// later `fsxsync verify` can spot local modifications cheaply.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include <fstream>

#include "fsync/cache/sync_cache.h"
#include "fsync/core/adaptive.h"
#include "fsync/netd/client.h"
#include "fsync/netd/daemon.h"
#include "fsync/core/config_io.h"
#include "fsync/core/collection.h"
#include "fsync/obs/json.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/simd/dispatch.h"
#include "fsync/store/apply.h"
#include "fsync/store/crashpoint.h"
#include "fsync/store/fsstore.h"
#include "fsync/store/vfs.h"
#include "fsync/store/vfs_fault.h"
#include "fsync/testing/faults.h"
#include "fsync/transport/reliable.h"
#include "fsync/util/random.h"
#include "fsync/workload/release.h"

namespace {

using fsx::Collection;

/// --trace sink: one stderr line per observed event, as it happens.
class StderrTraceSink : public fsx::obs::TraceSink {
 public:
  void OnEvent(const fsx::obs::TraceEvent& event) override {
    using fsx::obs::EventKind;
    switch (event.kind) {
      case EventKind::kMessage:
        std::fprintf(stderr,
                     "trace: %-14s msg   round=%-3u phase=%-12s %-4s "
                     "%llu bytes\n",
                     event.protocol, event.round, PhaseName(event.phase),
                     FlowName(event.dir),
                     static_cast<unsigned long long>(event.bytes));
        break;
      case EventKind::kRound:
        std::fprintf(stderr, "trace: %-14s round round=%-3u %llu ns\n",
                     event.protocol, event.round,
                     static_cast<unsigned long long>(event.wall_ns));
        break;
      case EventKind::kSession:
        std::fprintf(stderr,
                     "trace: %-14s end   %llu bytes total, %llu ns\n",
                     event.protocol,
                     static_cast<unsigned long long>(event.bytes),
                     static_cast<unsigned long long>(event.wall_ns));
        break;
    }
  }
};

/// `fsxsync --features`: what the dispatch layer probed on this host and
/// which kernel tier the hot paths will use (honours FSX_FORCE_SCALAR).
int PrintFeatures() {
  const fsx::simd::CpuFeatures& cpu = fsx::simd::DetectCpuFeatures();
  std::printf("dispatch:        %s\n",
              fsx::simd::DescribeDispatch().c_str());
  std::printf("active tier:     %s\n",
              fsx::simd::TierName(fsx::simd::ActiveTier()));
  std::printf("available tiers:");
  for (fsx::simd::DispatchTier t : fsx::simd::AvailableTiers()) {
    std::printf(" %s", fsx::simd::TierName(t));
  }
  std::printf("\n");
  std::printf("cpu:             sse4.2=%c avx2=%c pclmul=%c armv8crc=%c\n",
              cpu.sse42 ? 'y' : 'n', cpu.avx2 ? 'y' : 'n',
              cpu.clmul ? 'y' : 'n', cpu.armv8_crc ? 'y' : 'n');
  std::printf("forced scalar:   %s (FSX_FORCE_SCALAR)\n",
              fsx::simd::ForceScalarFromEnv() ? "yes" : "no");
  return 0;
}

/// --metrics-json output: phase attribution + aggregate instruments.
/// `transport` is non-null when the sync ran over the reliable transport.
int WriteMetricsJson(const fsx::obs::SyncObserver& observer,
                     const std::string& method, const std::string& path,
                     const fsx::transport::TransportCounters* transport,
                     const fsx::cache::SyncCache* cache) {
  fsx::obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("fsx-metrics-v1");
  w.Key("method");
  w.String(method);
  w.Key("bytes");
  w.BeginObject();
  w.Key("total");
  w.Uint(observer.total_bytes());
  w.Key("up");
  w.Uint(observer.dir_bytes(fsx::obs::Flow::kUp));
  w.Key("down");
  w.Uint(observer.dir_bytes(fsx::obs::Flow::kDown));
  w.Key("phases");
  fsx::obs::WritePhaseBytes(w, observer);
  w.EndObject();
  w.Key("rounds");
  w.Uint(observer.rounds());
  w.Key("wall_ns");
  w.Uint(observer.wall_ns());
  // Which kernel tier the hot paths ran on — an execution detail (wire
  // bytes are tier-independent), recorded so perf numbers are
  // attributable to the hardware that produced them.
  w.Key("dispatch");
  w.BeginObject();
  w.Key("tier");
  w.String(fsx::simd::TierName(fsx::simd::ActiveTier()));
  w.Key("forced_scalar");
  w.Bool(fsx::simd::ForceScalarFromEnv());
  w.EndObject();
  if (transport != nullptr) {
    w.Key("transport");
    w.BeginObject();
    w.Key("records_sent");
    w.Uint(transport->records_sent);
    w.Key("retransmits");
    w.Uint(transport->retransmits);
    w.Key("timeouts");
    w.Uint(transport->timeouts);
    w.Key("corrupt_dropped");
    w.Uint(transport->corrupt_dropped);
    w.Key("duplicate_dropped");
    w.Uint(transport->duplicate_dropped);
    w.Key("reorder_buffered");
    w.Uint(transport->reorder_buffered);
    w.Key("delivered");
    w.Uint(transport->delivered);
    w.EndObject();
  }
  if (cache != nullptr) {
    fsx::cache::CacheStats s = cache->Stats();
    w.Key("cache");
    w.BeginObject();
    w.Key("hits");
    w.Uint(s.hits);
    w.Key("misses");
    w.Uint(s.misses);
    w.Key("insertions");
    w.Uint(s.insertions);
    w.Key("evictions");
    w.Uint(s.evictions);
    w.Key("entries");
    w.Uint(s.entries);
    w.Key("bytes_used");
    w.Uint(s.bytes_used);
    w.Key("bytes_saved");
    w.Uint(s.bytes_saved);
    w.Key("cpu_saved_ns");
    w.Uint(s.cpu_saved_ns);
    w.Key("dedup_bytes_saved");
    w.Uint(s.dedup_bytes_saved);
    w.EndObject();
  }
  w.Key("events");
  w.BeginObject();
  for (int i = 0; i < fsx::obs::kNumEvents; ++i) {
    fsx::obs::Event e = static_cast<fsx::obs::Event>(i);
    w.Key(fsx::obs::EventName(e));
    w.Uint(observer.event_count(e));
  }
  w.EndObject();
  fsx::obs::MetricsRegistry registry;
  observer.FlushTo(registry, method);
  w.Key("metrics");
  fsx::obs::WriteMetrics(w, registry);
  w.EndObject();
  std::string doc = w.Take();
  if (path.empty()) {
    std::printf("%s\n", doc.c_str());
    return 0;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc << "\n";
  std::printf("metrics written to %s\n", path.c_str());
  return out.good() ? 0 : 1;
}

void PrintStats(std::FILE* out, const char* method,
                const fsx::CollectionSyncResult& r, uint64_t tree_bytes) {
  std::fprintf(out, "method:        %s\n", method);
  std::fprintf(out, "files:         %llu total, %llu unchanged, %llu new\n",
               static_cast<unsigned long long>(r.files_total),
               static_cast<unsigned long long>(r.files_unchanged),
               static_cast<unsigned long long>(r.files_new));
  std::fprintf(out, "traffic:       %.1f KiB (%.2f%% of tree)\n",
               r.stats.total_bytes() / 1024.0,
               tree_bytes ? 100.0 * r.stats.total_bytes() / tree_bytes : 0.0);
  std::fprintf(out, "roundtrips:    %llu (batched across files)\n",
               static_cast<unsigned long long>(r.stats.roundtrips));
}

struct ObserveOptions {
  bool trace = false;
  bool metrics_json = false;
  std::string metrics_path;  // empty = stdout
};

struct FaultOptions {
  double drop = 0.0;     // per-message loss probability, both directions
  double corrupt = 0.0;  // per-message bit-flip probability
  int retries = 0;       // 0 = transport default
  bool any() const { return drop > 0 || corrupt > 0 || retries > 0; }
};

struct ApplyCliOptions {
  bool journal = false;       // crash-safe journaled apply path
  bool recover_first = false; // resolve leftover journals before syncing
  bool verify_after = false;  // re-verify dest against its manifest
};

struct CacheCliOptions {
  bool enabled = false;    // --cache-bytes given
  uint64_t max_bytes = 0;  // LRU budget; 0 = unbounded
};

// Exit-code taxonomy (documented in the header comment): conflicts beat
// "recovered", which beats clean.
constexpr int kExitClean = 0;
constexpr int kExitFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRecovered = 3;
constexpr int kExitConflicts = 4;
constexpr int kExitDiskFull = 5;

/// Exit code for a failed store operation: disk-full gets its own code
/// so wrappers can distinguish "free space and retry" from a real bug.
int ExitCodeFor(const fsx::Status& status) {
  return status.code() == fsx::StatusCode::kResourceExhausted
             ? kExitDiskFull
             : kExitFailed;
}

int RunSync(const std::string& src_dir, const std::string& dst_dir,
            const std::string& method, bool dry_run, bool keep_extra,
            const std::string& config_path = "",
            const ObserveOptions& observe = {},
            const FaultOptions& faults = {},
            const ApplyCliOptions& apply = {},
            const CacheCliOptions& cache_opts = {}) {
  bool recovered_before_sync = false;
  if (apply.recover_first) {
    auto rec = fsx::store::RecoverTree(dst_dir);
    if (!rec.ok()) {
      std::fprintf(stderr, "recover: %s\n", rec.status().ToString().c_str());
      return kExitFailed;
    }
    recovered_before_sync = rec->had_journal || rec->cleaned_temps > 0 ||
                            rec->inplace_recovered > 0;
    if (recovered_before_sync) {
      std::fprintf(stderr,
                   "recover: resolved interrupted apply in %s "
                   "(%llu rolled back, %llu temps cleaned)\n",
                   dst_dir.c_str(),
                   static_cast<unsigned long long>(rec->rolled_back_files),
                   static_cast<unsigned long long>(rec->cleaned_temps));
    }
  }
  auto server_tree = fsx::LoadTree(src_dir);
  if (!server_tree.ok()) {
    std::fprintf(stderr, "source: %s\n",
                 server_tree.status().ToString().c_str());
    return 1;
  }
  auto client_tree = fsx::LoadTree(dst_dir);
  if (!client_tree.ok()) {
    std::fprintf(stderr, "dest: %s\n",
                 client_tree.status().ToString().c_str());
    return 1;
  }
  uint64_t tree_bytes = 0;
  for (const auto& [name, data] : *server_tree) {
    tree_bytes += data.size();
  }

  fsx::obs::SyncObserver observer;
  StderrTraceSink trace_sink;
  if (observe.trace) {
    observer.set_sink(&trace_sink);
  }
  fsx::obs::SyncObserver* obs =
      observe.trace || observe.metrics_json ? &observer : nullptr;

  if (faults.any() && method != "fsx") {
    std::fprintf(stderr,
                 "--fault-drop/--fault-corrupt/--retries need --method fsx\n");
    return 2;
  }
  if (cache_opts.enabled && method != "fsx") {
    std::fprintf(stderr, "--cache-bytes needs --method fsx\n");
    return kExitUsage;
  }

  fsx::StatusOr<fsx::CollectionSyncResult> result =
      fsx::Status::Internal("unset");
  std::optional<fsx::transport::TransportCounters> transport_counters;
  std::optional<fsx::cache::SyncCache> server_cache;
  if (cache_opts.enabled) {
    server_cache.emplace(cache_opts.max_bytes);
  }
  fsx::cache::SyncCache* cache =
      server_cache.has_value() ? &*server_cache : nullptr;
  if (method == "rsync") {
    result = SyncCollectionRsync(*client_tree, *server_tree,
                                 fsx::RsyncParams{}, obs);
  } else if (method == "cdc") {
    result = SyncCollectionCdc(*client_tree, *server_tree,
                               fsx::CdcSyncParams{}, obs);
  } else if (method == "multiround") {
    result = SyncCollectionMultiround(*client_tree, *server_tree,
                                      fsx::MultiroundParams{}, obs);
  } else if (method == "fsx") {
    fsx::SyncConfig config = fsx::ChooseConfig(32 * 1024, 32 * 1024);
    if (!config_path.empty()) {
      // The paper's "parameter file": full control over every round.
      std::ifstream in(config_path);
      if (!in) {
        std::fprintf(stderr, "cannot read config %s\n",
                     config_path.c_str());
        return 1;
      }
      std::string text{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
      auto parsed = fsx::ParseSyncConfig(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      config = *parsed;
    }
    fsx::SimulatedChannel channel;
    if (faults.any()) {
      // Lossy-link mode: arm the faults on the raw channel and run the
      // whole collection over the reliable record transport.
      fsx::FaultSchedule schedule;
      schedule.name = "cli";
      schedule.seed = fsx::SeedFromEnv(0xF5C11);
      for (int d = 0; d < 2; ++d) {
        schedule.drop[d] = faults.drop;
        schedule.corrupt[d] = faults.corrupt;
      }
      ArmSchedule(channel, schedule);
      fsx::transport::ReliableParams params;
      if (faults.retries > 0) {
        params.max_attempts = faults.retries;
      }
      fsx::transport::ReliableChannel reliable(channel, params);
      result = SyncCollectionBatched(*client_tree, *server_tree, config,
                                     reliable, obs, cache);
      transport_counters = reliable.counters();
      std::fprintf(stderr,
                   "transport: %llu records, %llu retransmits, "
                   "%llu timeouts\n",
                   static_cast<unsigned long long>(
                       transport_counters->records_sent),
                   static_cast<unsigned long long>(
                       transport_counters->retransmits),
                   static_cast<unsigned long long>(
                       transport_counters->timeouts));
    } else {
      result = SyncCollectionBatched(*client_tree, *server_tree, config,
                                     channel, obs, cache);
    }
  } else {
    std::fprintf(stderr, "unknown method '%s' (fsx|rsync|cdc|multiround)\n",
                 method.c_str());
    return 2;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // With --metrics-json to stdout, keep stdout machine-readable: the JSON
  // document is the only thing printed there; everything human goes to
  // stderr so `fsxsync ... --metrics-json | jq .` works.
  std::FILE* human =
      observe.metrics_json && observe.metrics_path.empty() ? stderr : stdout;
  PrintStats(human, method.c_str(), *result, tree_bytes);
  // Deferred until after the apply phase so journal/recovery/conflict
  // events show up in the emitted document.
  auto write_metrics = [&]() {
    // The vfs layer counts fsync failures and injected faults in
    // process-global atomics (it has no observer); fold them into the
    // event table so they land in the JSON document. Each return path
    // calls this lambda at most once, so the fold cannot double-count.
    const fsx::store::VfsCounters& vfs = fsx::store::GlobalVfsCounters();
    observer.AddEvent(fsx::obs::Event::kFsyncFailure,
                      vfs.fsync_failures.load());
    observer.AddEvent(fsx::obs::Event::kDiskFaultInjected,
                      vfs.faults_injected.load());
    return !observe.metrics_json ||
           WriteMetricsJson(observer, method, observe.metrics_path,
                            transport_counters.has_value()
                                ? &*transport_counters
                                : nullptr,
                            cache) == 0;
  };
  if (result->reconstructed != *server_tree) {
    std::fprintf(stderr, "internal error: reconstruction mismatch\n");
    return 1;
  }
  if (dry_run) {
    std::fprintf(human, "dry run: destination not modified\n");
    return write_metrics() ? kExitClean : kExitFailed;
  }

  bool recovered = recovered_before_sync;
  size_t conflicts = 0;
  if (apply.journal) {
    // Crash-safe path: journaled per-file commit, with the loaded dest
    // tree as the conflict baseline — anything that changed since the
    // scan is skipped and reported, not clobbered.
    fsx::store::ApplyOptions options;
    options.delete_extra = !keep_extra;
    options.write_manifest = true;
    auto report = fsx::store::ApplyTree(dst_dir, result->reconstructed,
                                        fsx::BuildManifest(*client_tree),
                                        options, obs);
    if (!report.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   report.status().ToString().c_str());
      (void)write_metrics();  // surface enospc_aborts/fsync_failures
      return ExitCodeFor(report.status());
    }
    recovered = recovered || report->recovered;
    conflicts = report->conflicts.size();
    for (const std::string& name : report->conflicts) {
      std::fprintf(stderr, "conflict: %s changed during sync; skipped\n",
                   name.c_str());
    }
    std::fprintf(human,
                 "destination updated (journaled: %llu written, "
                 "%llu unchanged, %llu deleted, %zu conflicts)\n",
                 static_cast<unsigned long long>(report->files_committed),
                 static_cast<unsigned long long>(report->files_unchanged),
                 static_cast<unsigned long long>(report->files_deleted),
                 conflicts);
  } else {
    fsx::Status st = fsx::StoreTree(dst_dir, result->reconstructed,
                                    /*delete_extra=*/!keep_extra,
                                    /*write_manifest=*/true);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      (void)write_metrics();
      return ExitCodeFor(st);
    }
    std::fprintf(human, "destination updated (manifest written)\n");
  }

  if (apply.verify_after) {
    auto dirty = fsx::VerifyTree(dst_dir);
    if (!dirty.ok()) {
      std::fprintf(stderr, "post-apply verify failed: %s\n",
                   dirty.status().ToString().c_str());
      return kExitFailed;
    }
    if (!dirty->empty()) {
      std::fprintf(stderr,
                   "post-apply verify: %zu file(s) differ from manifest\n",
                   dirty->size());
      return kExitFailed;
    }
    std::fprintf(human, "post-apply verify: clean\n");
  }

  if (!write_metrics()) {
    return kExitFailed;
  }
  if (conflicts > 0) {
    return kExitConflicts;
  }
  if (recovered) {
    return kExitRecovered;
  }
  return kExitClean;
}

int Recover(const std::string& dir) {
  auto rec = fsx::store::RecoverTree(dir);
  if (!rec.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 rec.status().ToString().c_str());
    return kExitFailed;
  }
  if (!rec->had_journal && rec->cleaned_temps == 0 &&
      rec->inplace_recovered == 0) {
    std::printf("%s: clean (no interrupted apply)\n", dir.c_str());
    return kExitClean;
  }
  std::printf(
      "%s: recovered (%s journal, %llu file(s) rolled back, "
      "%llu temp(s) cleaned, %llu in-place journal(s) resolved)\n",
      dir.c_str(),
      rec->had_journal ? (rec->was_committed ? "committed" : "uncommitted")
                       : "no",
      static_cast<unsigned long long>(rec->rolled_back_files),
      static_cast<unsigned long long>(rec->cleaned_temps),
      static_cast<unsigned long long>(rec->inplace_recovered));
  return kExitRecovered;
}

int Verify(const std::string& dir) {
  auto dirty = fsx::VerifyTree(dir);
  if (!dirty.ok()) {
    std::fprintf(stderr, "verify failed: %s\n",
                 dirty.status().ToString().c_str());
    return 1;
  }
  if (dirty->empty()) {
    std::printf("%s: clean (matches manifest)\n", dir.c_str());
    return 0;
  }
  std::printf("%s: %zu file(s) differ from the manifest:\n", dir.c_str(),
              dirty->size());
  for (const std::string& name : *dirty) {
    std::printf("  %s\n", name.c_str());
  }
  return 1;
}

int Demo() {
  // Self-contained demo: generate a release pair in temp dirs and sync.
  fsx::ReleaseProfile profile = fsx::GccLikeProfile();
  profile.num_files = 25;
  fsx::ReleasePair pair = fsx::MakeRelease(profile);
  std::filesystem::path base =
      std::filesystem::temp_directory_path() / "fsxsync_demo";
  std::string src = (base / "server").string();
  std::string dst = (base / "client").string();
  if (!fsx::StoreTree(src, pair.new_release, true).ok() ||
      !fsx::StoreTree(dst, pair.old_release, true).ok()) {
    std::fprintf(stderr, "cannot set up demo trees\n");
    return 1;
  }
  std::printf("demo trees under %s\n\n", base.string().c_str());
  int rc = RunSync(src, dst, "fsx", /*dry_run=*/false,
                   /*keep_extra=*/false);
  if (rc != 0) {
    return rc;
  }
  std::printf("\nverifying destination manifest...\n");
  return Verify(dst);
}

// `fsxsync serve`: the real multi-client daemon (fsync/netd/). SIGTERM
// and SIGINT trigger a graceful drain — in-flight sessions finish, new
// ones are refused, and the process exits once the last client is done
// (bounded by the daemon's drain deadline).
fsx::netd::SyncDaemon* g_serve_daemon = nullptr;

void ServeSignalHandler(int) {
  if (g_serve_daemon != nullptr) {
    g_serve_daemon->Drain();  // async-signal-safe: atomic + pipe write
  }
}

int Serve(int argc, char** argv) {
  std::string dir;
  fsx::netd::DaemonOptions options;
  std::string config_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      options.unix_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      options.cache_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--max-conns=", 12) == 0) {
      options.max_connections =
          static_cast<size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (argv[i][0] != '-' && dir.empty()) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "serve: unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: fsxsync serve <dir> [--port=N] [--unix=path] "
                 "[--config <file>] [--cache-bytes=N] [--max-conns=N]\n");
    return kExitUsage;
  }
  if (!config_path.empty()) {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "cannot read config %s\n", config_path.c_str());
      return kExitFailed;
    }
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    auto parsed = fsx::ParseSyncConfig(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return kExitFailed;
    }
    options.config = *parsed;
  }
  auto tree = fsx::LoadTree(dir);
  if (!tree.ok()) {
    std::fprintf(stderr, "serve: %s\n", tree.status().ToString().c_str());
    return kExitFailed;
  }
  fsx::netd::SyncDaemon daemon(std::move(*tree), options);
  fsx::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return kExitFailed;
  }
  g_serve_daemon = &daemon;
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGINT, ServeSignalHandler);
  if (options.unix_path.empty()) {
    std::printf("serving %s on %s:%u (%s backend)\n", dir.c_str(),
                options.host.c_str(), static_cast<unsigned>(daemon.port()),
                daemon.poller_name());
  } else {
    std::printf("serving %s on unix:%s (%s backend)\n", dir.c_str(),
                options.unix_path.c_str(), daemon.poller_name());
  }
  std::fflush(stdout);
  daemon.Join();  // returns when a signal-triggered drain completes
  g_serve_daemon = nullptr;
  fsx::netd::DaemonStats stats = daemon.stats();
  std::printf(
      "drained: %llu conns accepted, %llu sessions completed, "
      "%llu KB in / %llu KB out\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.sessions_completed),
      static_cast<unsigned long long>(stats.bytes_in / 1024),
      static_cast<unsigned long long>(stats.bytes_out / 1024));
  return kExitClean;
}

// `fsxsync connect`: synchronize <dest-dir> from a running daemon.
int Connect(int argc, char** argv) {
  std::string server;
  std::string dir;
  fsx::netd::ClientOptions opts;
  bool keep_extra = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      opts.unix_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      opts.checkpoint_dir = argv[i] + 17;
    } else if (std::strcmp(argv[i], "--keep-extra") == 0) {
      keep_extra = true;
    } else if (argv[i][0] != '-' && server.empty() &&
               opts.unix_path.empty()) {
      server = argv[i];
    } else if (argv[i][0] != '-' && dir.empty()) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "connect: unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  if (!server.empty()) {
    const size_t colon = server.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "connect: server must be <host>:<port>\n");
      return kExitUsage;
    }
    opts.host = server.substr(0, colon);
    opts.port = static_cast<uint16_t>(std::atoi(server.c_str() + colon + 1));
  }
  if (dir.empty() || (server.empty() && opts.unix_path.empty())) {
    std::fprintf(stderr,
                 "usage: fsxsync connect <host:port> <dest-dir> "
                 "[--unix=path] [--checkpoint-dir=path] [--keep-extra]\n");
    return kExitUsage;
  }
  auto local = fsx::LoadTree(dir);
  if (!local.ok()) {
    std::fprintf(stderr, "connect: %s\n", local.status().ToString().c_str());
    return kExitFailed;
  }
  if (!opts.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint_dir, ec);
  }
  auto result = fsx::netd::RunSyncClient(*local, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 result.status().ToString().c_str());
    return kExitFailed;
  }
  fsx::Status stored = fsx::StoreTree(dir, result->reconstructed,
                                      /*delete_extra=*/!keep_extra,
                                      /*write_manifest=*/true);
  if (!stored.ok()) {
    std::fprintf(stderr, "connect: %s\n", stored.ToString().c_str());
    return ExitCodeFor(stored);
  }
  std::printf(
      "synced %s: %llu files (%llu unchanged, %llu sessioned, "
      "%llu new, %llu resumed, %llu aborted)\n",
      dir.c_str(), static_cast<unsigned long long>(result->files_total),
      static_cast<unsigned long long>(result->files_unchanged),
      static_cast<unsigned long long>(result->files_sessioned),
      static_cast<unsigned long long>(result->files_new),
      static_cast<unsigned long long>(result->files_resumed),
      static_cast<unsigned long long>(result->files_aborted));
  if (result->files_aborted > 0) {
    return result->server_draining ? kExitConflicts : kExitFailed;
  }
  return kExitClean;
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic crash injection for the kill-point harness: honour
  // FSX_CRASH_AT=<n> so external sweeps can kill the process at the
  // n-th crash point (no-op unless the variable is set).
  fsx::store::ArmCrashFromEnv();
  // Deterministic disk-fault injection on the store's vfs seam: honour
  // FSX_DISK_FAULT=<spec> (e.g. "enospc-after=4096", "fail-op=7,
  // errno=eio", "fsync-fail,pattern=.manifest") so external sweeps can
  // exercise error paths without a special filesystem (no-op when unset).
  fsx::store::ArmDiskFaultFromEnv();
  if (argc >= 2 && (std::strcmp(argv[1], "--features") == 0 ||
                    std::strcmp(argv[1], "features") == 0)) {
    return PrintFeatures();
  }
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
    return Demo();
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0) {
    return Verify(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "recover") == 0) {
    return Recover(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "connect") == 0) {
    return Connect(argc, argv);
  }
  if (argc < 3) {
    std::fprintf(
        stderr,
        "usage: %s <source-dir> <dest-dir> [--method fsx|rsync|cdc|"
        "multiround] [--dry-run] [--keep-extra] [--trace] "
        "[--metrics-json[=path]] [--cache-bytes=N] [--fault-drop=P] "
        "[--fault-corrupt=P] [--retries=N] [--journal] [--recover] "
        "[--verify-after-apply]\n"
        "       %s verify <dir>\n       %s recover <dir>\n"
        "       %s serve <dir> [--port=N] [--unix=path]\n"
        "       %s connect <host:port> <dest-dir>\n"
        "       %s demo\n       %s --features\n"
        "\n"
        "serve/connect run a real multi-client daemon over TCP or unix\n"
        "sockets (SIGTERM drains gracefully; see docs/architecture.md).\n"
        "\n"
        "exit codes:\n"
        "  0  sync applied cleanly\n"
        "  1  failure (I/O, protocol, or post-apply verify mismatch)\n"
        "  2  usage error (bad flag or flag/method combination)\n"
        "  3  applied cleanly after recovering an interrupted apply\n"
        "  4  applied, but concurrently modified files were skipped\n"
        "     (each conflict listed on stderr)\n"
        "  5  destination disk full (apply aborted and rolled back;\n"
        "     free space and re-run)\n"
        "  (FSX_CRASH_AT kill-point runs exit 42 at the armed boundary;\n"
        "   FSX_DISK_FAULT=<spec> arms deterministic disk-fault\n"
        "   injection, e.g. enospc-after=4096 or fsync-fail)\n",
        argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
    return kExitUsage;
  }
  std::string method = "fsx";
  std::string config_path;
  bool dry_run = false;
  bool keep_extra = false;
  ObserveOptions observe;
  FaultOptions faults;
  ApplyCliOptions apply;
  CacheCliOptions cache_opts;
  auto parse_prob = [](const char* text, double* out) {
    char* end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0 || v >= 1.0) {
      return false;
    }
    *out = v;
    return true;
  };
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[++i];
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--keep-extra") == 0) {
      keep_extra = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      observe.trace = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      observe.metrics_json = true;
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      observe.metrics_json = true;
      observe.metrics_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--cache-bytes=", 14) == 0) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(argv[i] + 14, &end, 10);
      if (end == argv[i] + 14 || *end != '\0') {
        std::fprintf(stderr,
                     "--cache-bytes needs a byte count (0 = unbounded)\n");
        return kExitUsage;
      }
      cache_opts.enabled = true;
      cache_opts.max_bytes = v;
    } else if (std::strncmp(argv[i], "--fault-drop=", 13) == 0) {
      if (!parse_prob(argv[i] + 13, &faults.drop)) {
        std::fprintf(stderr, "--fault-drop needs a probability in [0,1)\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--fault-corrupt=", 16) == 0) {
      if (!parse_prob(argv[i] + 16, &faults.corrupt)) {
        std::fprintf(stderr,
                     "--fault-corrupt needs a probability in [0,1)\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      faults.retries = std::atoi(argv[i] + 10);
      if (faults.retries < 1) {
        std::fprintf(stderr, "--retries needs a positive count\n");
        return kExitUsage;
      }
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      apply.journal = true;
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      apply.recover_first = true;
    } else if (std::strcmp(argv[i], "--verify-after-apply") == 0) {
      apply.verify_after = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return kExitUsage;
    }
  }
  return RunSync(argv[1], argv[2], method, dry_run, keep_extra,
                 config_path, observe, faults, apply, cache_opts);
}
