// Broadcast feed: one publisher pushes updates of a crawled page to many
// subscribers holding copies of different ages (the paper's WebBase-feed
// motivation, using the Section-7 "server broadcast" extension). The
// hash cast is emitted once per update; each subscriber only exchanges a
// tiny per-client request/delta pair, so the per-subscriber cost shrinks
// as the audience grows.
#include <cstdio>

#include "fsync/core/broadcast.h"
#include "fsync/core/session.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

int main() {
  using namespace fsx;

  // A document evolving over five versions; subscribers lag behind by
  // various amounts.
  Rng rng(99);
  std::vector<Bytes> versions;
  versions.push_back(SynthSourceFile(rng, 300 * 1024));
  for (int v = 1; v <= 4; ++v) {
    EditProfile ep;
    ep.num_edits = 15;
    versions.push_back(ApplyEdits(versions.back(), ep, rng));
  }
  const Bytes& latest = versions.back();

  HashCastConfig config;
  auto cast = BuildHashCast(latest, config);
  if (!cast.ok()) {
    std::fprintf(stderr, "cast failed: %s\n",
                 cast.status().ToString().c_str());
    return 1;
  }
  std::printf("document: %zu KiB, broadcast hash cast: %zu KiB "
              "(%.1f%% of the document, paid once per update)\n\n",
              latest.size() / 1024, cast->size() / 1024,
              100.0 * cast->size() / latest.size());

  std::printf("%-12s %10s %12s %12s\n", "subscriber", "coverage",
              "request B", "delta B");
  uint64_t per_client_total = 0;
  for (int lag = 1; lag <= 4; ++lag) {
    const Bytes& f_old = versions[versions.size() - 1 - lag];
    auto map = ApplyHashCast(f_old, *cast);
    if (!map.ok()) {
      std::fprintf(stderr, "map failed: %s\n",
                   map.status().ToString().c_str());
      return 1;
    }
    Bytes request = EncodeCastRequest(*map);
    auto delta = MakeCastDelta(latest, request, config);
    if (!delta.ok()) {
      return 1;
    }
    auto rebuilt = ApplyCastDelta(f_old, *map, *delta);
    if (!rebuilt.ok() || *rebuilt != latest) {
      std::fprintf(stderr, "subscriber lag %d: reconstruction failed\n",
                   lag);
      return 1;
    }
    per_client_total += request.size() + delta->size();
    std::printf("lag %-8d %9.1f%% %12zu %12zu\n", lag,
                100.0 * map->CoveredFraction(), request.size(),
                delta->size());
  }

  // Compare against running the interactive protocol per subscriber.
  uint64_t interactive_total = 0;
  for (int lag = 1; lag <= 4; ++lag) {
    const Bytes& f_old = versions[versions.size() - 1 - lag];
    SyncConfig sc;
    SimulatedChannel channel;
    auto r = SynchronizeFile(f_old, latest, sc, channel);
    if (!r.ok()) {
      return 1;
    }
    interactive_total += r->stats.total_bytes();
  }
  std::printf("\nbroadcast:   one %.1f KiB cast on the shared downlink + "
              "%.0f B unicast per subscriber\n",
              cast->size() / 1024.0, per_client_total / 4.0);
  std::printf("interactive: %.0f B unicast per subscriber (%.1f KiB for "
              "these 4), every byte repeated per client\n",
              interactive_total / 4.0, interactive_total / 1024.0);
  std::printf(
      "\nOn a unicast link the interactive protocol wins. The cast pays "
      "off on a\nbroadcast/multicast medium (or a busy server): its cost "
      "is audience-independent,\nso past ~%d subscribers the broadcast's "
      "total egress is lower.\n",
      static_cast<int>(cast->size() /
                       std::max<uint64_t>(
                           1, interactive_total / 4 -
                                  per_client_total / 4)) +
          1);
  return 0;
}
