// Quickstart: synchronize one edited file between two endpoints and print
// where the bytes went. Start here to see the library's core API:
//
//   SyncConfig        -- protocol knobs (block sizes, hash widths, ...)
//   SimulatedChannel  -- counts every byte and roundtrip
//   SynchronizeFile   -- runs the whole protocol, returns the new file
#include <cstdio>

#include "fsync/core/session.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

int main() {
  using namespace fsx;

  // The server holds the current file; the client holds an outdated copy.
  Rng rng(2024);
  Bytes outdated = SynthSourceFile(rng, 200 * 1024);
  EditProfile edits;
  edits.num_edits = 12;  // a typical "new version": a dozen local changes
  Bytes current = ApplyEdits(outdated, edits, rng);

  SyncConfig config;  // defaults: 2 KiB start blocks, recurse to 64 B
  SimulatedChannel channel;
  auto result = SynchronizeFile(outdated, current, config, channel);
  if (!result.ok()) {
    std::fprintf(stderr, "sync failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("file size:             %zu bytes (old) -> %zu bytes (new)\n",
              outdated.size(), current.size());
  std::printf("reconstructed OK:      %s\n",
              result->reconstructed == current ? "yes" : "NO");
  std::printf("total traffic:         %llu bytes (%.1f%% of the file)\n",
              static_cast<unsigned long long>(result->stats.total_bytes()),
              100.0 * result->stats.total_bytes() / current.size());
  std::printf("  map phase, s->c:     %llu bytes\n",
              static_cast<unsigned long long>(
                  result->map_server_to_client_bytes));
  std::printf("  map phase, c->s:     %llu bytes\n",
              static_cast<unsigned long long>(
                  result->map_client_to_server_bytes));
  std::printf("  delta payload:       %llu bytes\n",
              static_cast<unsigned long long>(result->delta_bytes));
  std::printf("roundtrips:            %llu\n",
              static_cast<unsigned long long>(result->stats.roundtrips));
  std::printf("map coverage:          %.1f%% of the new file confirmed\n",
              100.0 * result->confirmed_fraction);

  // Per-round protocol trace: block sizes shrink, harvest rates show how
  // well each hashing technique did.
  std::printf("\nround trace (cont/global/derived hashes -> confirmed):\n");
  for (const RoundTrace& t : result->trace) {
    std::printf("  round %2d%s  blocks %5llu..%-5llu  %4u/%4u/%4u -> %4u"
                "  (harvest %.0f%%)\n",
                t.round, t.stage_a ? "A" : " ",
                static_cast<unsigned long long>(t.min_block),
                static_cast<unsigned long long>(t.max_block),
                t.continuation_hashes, t.global_hashes, t.derived_hashes,
                t.confirmed, 100.0 * t.HarvestRate());
  }
  std::printf("\n");

  // How long would this take on a slow link vs. shipping the file?
  LinkModel dsl;
  dsl.downstream_bytes_per_sec = 128 * 1024;
  dsl.upstream_bytes_per_sec = 32 * 1024;
  TrafficStats full;
  full.server_to_client_bytes = current.size();
  full.roundtrips = 1;
  std::printf("transfer time @DSL:    %.2fs (vs %.2fs for a full copy)\n",
              dsl.TransferSeconds(result->stats),
              dsl.TransferSeconds(full));
  return 0;
}
