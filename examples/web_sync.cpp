// Maintaining a replicated web-page collection (the paper's motivating
// application): a client keeps a mirror of a crawled page set fresh by
// synchronizing every N days, using the adaptive configuration chooser.
#include <cstdio>

#include "fsync/core/adaptive.h"
#include "fsync/core/collection.h"
#include "fsync/workload/web.h"

int main() {
  using namespace fsx;

  WebProfile profile;
  profile.num_pages = 150;  // scaled-down demo of the paper's 10,000
  WebCollectionModel model(profile);

  uint64_t collection_bytes = 0;
  for (const auto& [name, page] : model.Snapshot(0)) {
    collection_bytes += page.size();
  }
  std::printf("collection: %d pages, %.1f MiB\n\n", profile.num_pages,
              collection_bytes / 1048576.0);

  // A home-DSL-class link: fast down, slow up, noticeable latency.
  LinkModel link;
  link.downstream_bytes_per_sec = 256 * 1024;
  link.upstream_bytes_per_sec = 64 * 1024;
  link.roundtrip_latency_sec = 0.08;
  AdaptiveHints hints;
  hints.roundtrip_latency_sec = link.roundtrip_latency_sec;
  hints.bandwidth_bytes_per_sec = link.downstream_bytes_per_sec;

  std::printf("%-10s %14s %14s %12s %10s\n", "interval", "traffic (KiB)",
              "unchanged", "roundtrips", "time (s)");
  for (int gap : {1, 2, 7}) {
    const Collection& old_snap = model.Snapshot(0);
    const Collection& new_snap = model.Snapshot(gap);

    SyncConfig config = ChooseConfig(32 * 1024, 32 * 1024, hints);
    // Batched driver: all files' protocol rounds share roundtrips, so the
    // reported latency is what a real deployment would see.
    SimulatedChannel channel;
    auto r = SyncCollectionBatched(old_snap, new_snap, config, channel);
    if (!r.ok()) {
      std::fprintf(stderr, "sync failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (r->reconstructed != new_snap) {
      std::fprintf(stderr, "MISMATCH after %d-day sync\n", gap);
      return 1;
    }
    std::printf("%6d day %14.1f %11llu/%llu %12llu %10.1f\n", gap,
                r->stats.total_bytes() / 1024.0,
                static_cast<unsigned long long>(r->files_unchanged),
                static_cast<unsigned long long>(r->files_total),
                static_cast<unsigned long long>(r->stats.roundtrips),
                link.TransferSeconds(r->stats));
  }
  std::printf("\nall snapshots verified byte-identical after sync\n");
  return 0;
}
