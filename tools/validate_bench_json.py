#!/usr/bin/env python3
"""Validate fsx JSON artifacts: BENCH_*.json and fsxsync metrics files.

Usage: validate_bench_json.py FILE [FILE...]

Dispatches on the document's "schema" field:
  - fsx-bench-v1: benchmark result sets (docs/benchmarks.md);
  - fsx-metrics-v1: single-run metrics emitted by
    `fsxsync --metrics-json`.

Checks the structural schema plus the accounting invariants the
observability layer guarantees:
  - bytes.up + bytes.down == bytes.total whenever the split is present;
  - results carrying a "throughput" object (the GB/s sweeps) have
    non-negative bytes_processed/gib_per_s and a config.dispatch_tier
    tag naming the kernel tier measured;
  - the per-phase byte matrix sums to exactly bytes.up / bytes.down per
    direction whenever phases are present (the same equality the
    conformance suite pins against the channel's TrafficStats);
  - metrics documents carry the full event-counter vocabulary,
    including the durable-apply counters (journal_commits, recoveries,
    rolled_back_files, conflicts_detected), the server-cache counters
    (cache_hits, cache_misses, cache_evictions, cache_bytes_saved,
    cache_cpu_saved_ns), the daemon counters (connections_accepted,
    connections_evicted, connections_drained, backpressure_stalls,
    deadline_expirations), and the disk-fault counters
    (disk_faults_injected, enospc_aborts, fsync_failures, disk_retries).

Standard library only; exits non-zero on the first invalid file.
"""

import json
import sys

PHASES = {
    "handshake",
    "candidates",
    "verification",
    "continuation",
    "literals",
    "delta",
    "fallback",
    "transport",
    "manifest",
}

EVENTS = {
    "retransmits",
    "timeouts",
    "corrupt_records",
    "duplicate_records",
    "reorder_buffered",
    "resumes",
    "repaired_regions",
    "full_fallbacks",
    "journal_commits",
    "recoveries",
    "rolled_back_files",
    "conflicts_detected",
    "renames_adopted",
    "small_files_batched",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_bytes_saved",
    "cache_cpu_saved_ns",
    "connections_accepted",
    "connections_evicted",
    "connections_drained",
    "backpressure_stalls",
    "deadline_expirations",
    "disk_faults_injected",
    "enospc_aborts",
    "fsync_failures",
    "disk_retries",
}


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_bytes(where, b):
    require(isinstance(b, dict), f"{where}: 'bytes' must be an object")
    require(is_uint(b.get("total")),
            f"{where}: bytes.total must be a non-negative integer")
    has_up = "up" in b
    has_down = "down" in b
    require(has_up == has_down,
            f"{where}: bytes.up and bytes.down must appear together")
    if has_up:
        require(is_uint(b["up"]) and is_uint(b["down"]),
                f"{where}: bytes.up/down must be non-negative integers")
        require(b["up"] + b["down"] == b["total"],
                f"{where}: up ({b['up']}) + down ({b['down']}) != "
                f"total ({b['total']})")
    if "phases" in b:
        require(has_up, f"{where}: phases require the up/down split")
        phases = b["phases"]
        require(isinstance(phases, dict),
                f"{where}: bytes.phases must be an object")
        sum_up = sum_down = 0
        for name, split in phases.items():
            require(name in PHASES,
                    f"{where}: unknown phase '{name}' "
                    f"(expected one of {sorted(PHASES)})")
            require(isinstance(split, dict) and is_uint(split.get("up"))
                    and is_uint(split.get("down")),
                    f"{where}: phase '{name}' must be "
                    "{{\"up\": uint, \"down\": uint}}")
            sum_up += split["up"]
            sum_down += split["down"]
        require(sum_up == b["up"],
                f"{where}: phase up-bytes sum to {sum_up}, "
                f"but bytes.up is {b['up']}")
        require(sum_down == b["down"],
                f"{where}: phase down-bytes sum to {sum_down}, "
                f"but bytes.down is {b['down']}")


def check_result(index, r):
    where = f"results[{index}]"
    require(isinstance(r, dict), f"{where}: must be an object")
    require(isinstance(r.get("name"), str) and r["name"],
            f"{where}: 'name' must be a non-empty string")
    where = f"results[{index}] ({r['name']!r})"
    config = r.get("config")
    require(isinstance(config, dict),
            f"{where}: 'config' must be an object")
    for k, v in config.items():
        require(isinstance(v, str),
                f"{where}: config['{k}'] must be a string")
    require(is_uint(r.get("rounds")),
            f"{where}: 'rounds' must be a non-negative integer")
    require(is_uint(r.get("wall_ns")),
            f"{where}: 'wall_ns' must be a non-negative integer")
    if "throughput" in r:
        tp = r["throughput"]
        require(isinstance(tp, dict),
                f"{where}: 'throughput' must be an object")
        require(is_uint(tp.get("bytes_processed")),
                f"{where}: throughput.bytes_processed must be a "
                "non-negative integer")
        rate = tp.get("gib_per_s")
        require(isinstance(rate, (int, float))
                and not isinstance(rate, bool) and rate >= 0,
                f"{where}: throughput.gib_per_s must be a non-negative "
                "number")
        require(isinstance(config.get("dispatch_tier"), str)
                and config["dispatch_tier"],
                f"{where}: throughput results must tag "
                "config.dispatch_tier with the kernel tier measured")
    require("bytes" in r, f"{where}: missing 'bytes'")
    check_bytes(where, r["bytes"])


def check_metrics_document(doc):
    require(isinstance(doc.get("method"), str) and doc["method"],
            "'method' must be a non-empty string")
    require("bytes" in doc, "missing 'bytes'")
    check_bytes("metrics", doc["bytes"])
    require(is_uint(doc.get("rounds")),
            "'rounds' must be a non-negative integer")
    require(is_uint(doc.get("wall_ns")),
            "'wall_ns' must be a non-negative integer")
    events = doc.get("events")
    require(isinstance(events, dict), "'events' must be an object")
    missing = EVENTS - events.keys()
    require(not missing, f"events: missing counters {sorted(missing)}")
    unknown = events.keys() - EVENTS
    require(not unknown, f"events: unknown counters {sorted(unknown)}")
    for name, v in events.items():
        require(is_uint(v),
                f"events['{name}'] must be a non-negative integer")
    if "dispatch" in doc:
        dispatch = doc["dispatch"]
        require(isinstance(dispatch, dict),
                "'dispatch' must be an object")
        require(isinstance(dispatch.get("tier"), str)
                and dispatch["tier"],
                "dispatch.tier must be a non-empty string")
        require(isinstance(dispatch.get("forced_scalar"), bool),
                "dispatch.forced_scalar must be a boolean")
    if "transport" in doc:
        transport = doc["transport"]
        require(isinstance(transport, dict),
                "'transport' must be an object")
        for name, v in transport.items():
            require(is_uint(v),
                    f"transport['{name}'] must be a non-negative integer")
    if "cache" in doc:
        cache = doc["cache"]
        require(isinstance(cache, dict), "'cache' must be an object")
        for name, v in cache.items():
            require(is_uint(v),
                    f"cache['{name}'] must be a non-negative integer")


def check_bench_document(doc):
    require(isinstance(doc.get("benchmark"), str) and doc["benchmark"],
            "'benchmark' must be a non-empty string")
    require(isinstance(doc.get("title"), str),
            "'title' must be a string")
    workload = doc.get("workload")
    require(isinstance(workload, dict), "'workload' must be an object")
    require(isinstance(workload.get("dataset"), str),
            "workload.dataset must be a string")
    require(is_uint(workload.get("files")),
            "workload.files must be a non-negative integer")
    require(is_uint(workload.get("bytes")),
            "workload.bytes must be a non-negative integer")
    results = doc.get("results")
    require(isinstance(results, list) and results,
            "'results' must be a non-empty array")
    for i, r in enumerate(results):
        check_result(i, r)


def check_document(doc):
    require(isinstance(doc, dict), "top level must be an object")
    schema = doc.get("schema")
    if schema == "fsx-bench-v1":
        check_bench_document(doc)
    elif schema == "fsx-metrics-v1":
        check_metrics_document(doc)
    else:
        raise Invalid("'schema' must be 'fsx-bench-v1' or "
                      f"'fsx-metrics-v1', got {schema!r}")
    return schema


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
            schema = check_document(doc)
            if schema == "fsx-bench-v1":
                n_phases = sum(
                    1 for r in doc["results"] if "phases" in r["bytes"])
                print(f"{path}: OK ({len(doc['results'])} results, "
                      f"{n_phases} with phase attribution)")
            else:
                nonzero = sorted(
                    k for k, v in doc["events"].items() if v)
                print(f"{path}: OK (metrics, method={doc['method']}, "
                      f"events: {', '.join(nonzero) or 'none'})")
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: UNREADABLE: {e}", file=sys.stderr)
            failures += 1
        except Invalid as e:
            print(f"{path}: INVALID: {e}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
