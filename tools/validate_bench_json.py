#!/usr/bin/env python3
"""Validate BENCH_*.json files against the fsx-bench-v1 schema.

Usage: validate_bench_json.py FILE [FILE...]

Checks the structural schema documented in docs/benchmarks.md plus the
accounting invariants the observability layer guarantees:
  - bytes.up + bytes.down == bytes.total whenever the split is present;
  - the per-phase byte matrix sums to exactly bytes.up / bytes.down per
    direction whenever phases are present (the same equality the
    conformance suite pins against the channel's TrafficStats).

Standard library only; exits non-zero on the first invalid file.
"""

import json
import sys

PHASES = {
    "handshake",
    "candidates",
    "verification",
    "continuation",
    "literals",
    "delta",
    "fallback",
    "transport",
}


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_bytes(where, b):
    require(isinstance(b, dict), f"{where}: 'bytes' must be an object")
    require(is_uint(b.get("total")),
            f"{where}: bytes.total must be a non-negative integer")
    has_up = "up" in b
    has_down = "down" in b
    require(has_up == has_down,
            f"{where}: bytes.up and bytes.down must appear together")
    if has_up:
        require(is_uint(b["up"]) and is_uint(b["down"]),
                f"{where}: bytes.up/down must be non-negative integers")
        require(b["up"] + b["down"] == b["total"],
                f"{where}: up ({b['up']}) + down ({b['down']}) != "
                f"total ({b['total']})")
    if "phases" in b:
        require(has_up, f"{where}: phases require the up/down split")
        phases = b["phases"]
        require(isinstance(phases, dict),
                f"{where}: bytes.phases must be an object")
        sum_up = sum_down = 0
        for name, split in phases.items():
            require(name in PHASES,
                    f"{where}: unknown phase '{name}' "
                    f"(expected one of {sorted(PHASES)})")
            require(isinstance(split, dict) and is_uint(split.get("up"))
                    and is_uint(split.get("down")),
                    f"{where}: phase '{name}' must be "
                    "{{\"up\": uint, \"down\": uint}}")
            sum_up += split["up"]
            sum_down += split["down"]
        require(sum_up == b["up"],
                f"{where}: phase up-bytes sum to {sum_up}, "
                f"but bytes.up is {b['up']}")
        require(sum_down == b["down"],
                f"{where}: phase down-bytes sum to {sum_down}, "
                f"but bytes.down is {b['down']}")


def check_result(index, r):
    where = f"results[{index}]"
    require(isinstance(r, dict), f"{where}: must be an object")
    require(isinstance(r.get("name"), str) and r["name"],
            f"{where}: 'name' must be a non-empty string")
    where = f"results[{index}] ({r['name']!r})"
    config = r.get("config")
    require(isinstance(config, dict),
            f"{where}: 'config' must be an object")
    for k, v in config.items():
        require(isinstance(v, str),
                f"{where}: config['{k}'] must be a string")
    require(is_uint(r.get("rounds")),
            f"{where}: 'rounds' must be a non-negative integer")
    require(is_uint(r.get("wall_ns")),
            f"{where}: 'wall_ns' must be a non-negative integer")
    require("bytes" in r, f"{where}: missing 'bytes'")
    check_bytes(where, r["bytes"])


def check_document(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("schema") == "fsx-bench-v1",
            f"'schema' must be 'fsx-bench-v1', got {doc.get('schema')!r}")
    require(isinstance(doc.get("benchmark"), str) and doc["benchmark"],
            "'benchmark' must be a non-empty string")
    require(isinstance(doc.get("title"), str),
            "'title' must be a string")
    workload = doc.get("workload")
    require(isinstance(workload, dict), "'workload' must be an object")
    require(isinstance(workload.get("dataset"), str),
            "workload.dataset must be a string")
    require(is_uint(workload.get("files")),
            "workload.files must be a non-negative integer")
    require(is_uint(workload.get("bytes")),
            "workload.bytes must be a non-negative integer")
    results = doc.get("results")
    require(isinstance(results, list) and results,
            "'results' must be a non-empty array")
    for i, r in enumerate(results):
        check_result(i, r)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
            check_document(doc)
            n_phases = sum(
                1 for r in doc["results"] if "phases" in r["bytes"])
            print(f"{path}: OK ({len(doc['results'])} results, "
                  f"{n_phases} with phase attribution)")
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: UNREADABLE: {e}", file=sys.stderr)
            failures += 1
        except Invalid as e:
            print(f"{path}: INVALID: {e}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
