#!/usr/bin/env python3
"""Check the repo's markdown docs for drift.

Usage: check_docs.py [REPO_ROOT]     (default: the repo containing this
                                      script)

Three checks, all against the working tree:

  1. Relative links resolve. Every `[text](target)` in a scanned file
     whose target is not an absolute URL (http/https/mailto) must point
     at an existing file or directory, relative to the file containing
     the link.
  2. Anchors resolve. A `path#fragment` (or in-file `#fragment`) link
     must name a heading that exists in the target file, using GitHub's
     heading-to-anchor slug rules.
  3. Architecture coverage. Every subsystem directory under
     `src/fsync/` must be referenced by path (`src/fsync/<name>`) from
     `docs/architecture.md`, so a new module cannot land without a
     place in the module map.

Scans every `*.md` at the repo root and under `docs/`. Fenced code
blocks and inline code spans are ignored (links inside them are
examples, not references). Standard library only; exits non-zero with
one line per problem.
"""

import os
import re
import sys

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def strip_code(lines):
    """Yield (lineno, text) for lines outside fenced code blocks, with
    inline code spans blanked out."""
    in_fence = False
    for n, line in enumerate(lines, 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield n, INLINE_CODE_RE.sub("", line)


def github_slug(heading, seen):
    """GitHub's heading -> anchor id algorithm (close enough for ASCII
    docs): drop code ticks, lowercase, keep alphanumerics/spaces/
    hyphens/underscores, spaces to hyphens, dedupe with -1, -2, ..."""
    text = heading.replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linkified headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    if slug in seen:
        k = seen[slug]
        seen[slug] = k + 1
        slug = f"{slug}-{k}"
    else:
        seen[slug] = 1
    return slug


def anchors_of(path, cache):
    if path in cache:
        return cache[path]
    anchors = set()
    seen = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        cache[path] = anchors
        return anchors
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    cache[path] = anchors
    return anchors


def check_file(md_path, root, anchor_cache, problems):
    with open(md_path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    base = os.path.dirname(md_path)
    rel = os.path.relpath(md_path, root)
    for lineno, text in strip_code(lines):
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(resolved):
                    problems.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"({os.path.relpath(resolved, root)} does not exist)")
                    continue
            else:
                resolved = md_path
            if fragment:
                if not resolved.endswith(".md") or os.path.isdir(resolved):
                    continue  # anchors into non-markdown are not checked
                if fragment not in anchors_of(resolved, anchor_cache):
                    problems.append(
                        f"{rel}:{lineno}: broken anchor '{target}' "
                        f"(no heading slugs to '#{fragment}' in "
                        f"{os.path.relpath(resolved, root)})")


def check_architecture_coverage(root, problems):
    fsync = os.path.join(root, "src", "fsync")
    arch = os.path.join(root, "docs", "architecture.md")
    if not os.path.isdir(fsync) or not os.path.isfile(arch):
        problems.append("missing src/fsync/ or docs/architecture.md")
        return
    with open(arch, encoding="utf-8") as f:
        text = f.read()
    for name in sorted(os.listdir(fsync)):
        if not os.path.isdir(os.path.join(fsync, name)):
            continue
        if f"src/fsync/{name}" not in text:
            problems.append(
                f"docs/architecture.md: subsystem src/fsync/{name}/ is "
                "never referenced — add it to the module map")


def main(argv):
    if len(argv) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    root = os.path.abspath(
        argv[1] if len(argv) == 2
        else os.path.join(os.path.dirname(__file__), ".."))
    targets = []
    for entry in sorted(os.listdir(root)):
        if entry.endswith(".md"):
            targets.append(os.path.join(root, entry))
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for entry in sorted(os.listdir(docs)):
            if entry.endswith(".md"):
                targets.append(os.path.join(docs, entry))
    problems = []
    anchor_cache = {}
    for md in targets:
        check_file(md, root, anchor_cache, problems)
    check_architecture_coverage(root, problems)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s) in "
              f"{len(targets)} file(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(targets)} markdown files, all links, "
          "anchors, and src/fsync/ coverage valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
