// Microbenchmarks of the hashing substrate: digest throughput, rolling
// update cost, and decomposition cost. These are the inner loops of both
// endpoints (the paper flags CPU as a future bottleneck; these numbers
// say where the time goes).
#include <benchmark/benchmark.h>

#include "fsync/hash/karp_rabin.h"
#include "fsync/hash/md4.h"
#include "fsync/hash/md5.h"
#include "fsync/hash/rolling_adler.h"
#include "fsync/hash/tabled_adler.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

Bytes MakeData(size_t n) {
  Rng rng(42);
  return rng.RandomBytes(n);
}

void BM_Md4Digest(benchmark::State& state) {
  Bytes data = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md4::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Md4Digest)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Md5Digest(benchmark::State& state) {
  Bytes data = MakeData(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Md5Digest)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_RollingAdlerScan(benchmark::State& state) {
  Bytes data = MakeData(1 << 20);
  const size_t w = state.range(0);
  for (auto _ : state) {
    RollingAdler roll(ByteSpan(data).subspan(0, w));
    uint32_t acc = 0;
    for (size_t pos = 0; pos + w < data.size(); ++pos) {
      acc ^= roll.value();
      roll.Roll(data[pos], data[pos + w]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_RollingAdlerScan)->Arg(700)->Arg(64);

void BM_TabledAdlerScan(benchmark::State& state) {
  Bytes data = MakeData(1 << 20);
  const size_t w = state.range(0);
  for (auto _ : state) {
    TabledAdlerWindow win(ByteSpan(data).subspan(0, w));
    uint32_t acc = 0;
    for (size_t pos = 0; pos + w < data.size(); ++pos) {
      acc ^= TabledAdler::Truncate(win.pair(), 24);
      win.Roll(data[pos], data[pos + w]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_TabledAdlerScan)->Arg(2048)->Arg(64);

void BM_KarpRabinScan(benchmark::State& state) {
  Bytes data = MakeData(1 << 20);
  const size_t w = state.range(0);
  for (auto _ : state) {
    KarpRabin kr(ByteSpan(data).subspan(0, w));
    uint64_t acc = 0;
    for (size_t pos = 0; pos + w < data.size(); ++pos) {
      acc ^= kr.value();
      kr.Roll(data[pos], data[pos + w]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_KarpRabinScan)->Arg(64);

void BM_TabledAdlerDecompose(benchmark::State& state) {
  Bytes data = MakeData(4096);
  AdlerPair parent = TabledAdler::Hash(data);
  AdlerPair left = TabledAdler::Hash(ByteSpan(data).subspan(0, 2048));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TabledAdler::SplitRight(parent, left, 2048));
  }
}
BENCHMARK(BM_TabledAdlerDecompose);

void BM_BlockHashesPerMib(benchmark::State& state) {
  // End-to-end cost of hashing every block of a 1 MiB file at one level.
  Bytes data = MakeData(1 << 20);
  const size_t b = state.range(0);
  for (auto _ : state) {
    uint32_t acc = 0;
    for (size_t off = 0; off + b <= data.size(); off += b) {
      acc ^= TabledAdler::Truncate(
          TabledAdler::Hash(ByteSpan(data).subspan(off, b)), 24);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BlockHashesPerMib)->Arg(2048)->Arg(256)->Arg(64);

}  // namespace
}  // namespace fsx

BENCHMARK_MAIN();
