// Shared helpers for the per-figure/table benchmark harnesses.
#ifndef FSYNC_BENCH_BENCH_UTIL_H_
#define FSYNC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "fsync/core/collection.h"
#include "fsync/workload/release.h"

namespace fsx::bench {

/// Returns the total byte size of a collection.
inline uint64_t CollectionBytes(const Collection& c) {
  uint64_t total = 0;
  for (const auto& [name, data] : c) {
    total += data.size();
  }
  return total;
}

/// Prints a standard header naming the experiment being reproduced.
inline void PrintHeader(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  --  %s\n", id.c_str(), what.c_str());
  std::printf("(synthetic stand-in workloads; compare shapes/ratios, not\n");
  std::printf(" absolute KB, against the paper)\n");
  std::printf("==============================================================\n");
}

/// Reduced-scale profiles so every bench binary finishes in seconds.
/// Raise num_files / sizes for a full-scale run.
inline ReleaseProfile BenchGccProfile() {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 150;
  p.min_file_bytes = 4 * 1024;   // ~27 KB average file, as in the paper's
  p.max_file_bytes = 192 * 1024; // gcc/emacs trees
  return p;
}

inline ReleaseProfile BenchEmacsProfile() {
  ReleaseProfile p = EmacsLikeProfile();
  p.num_files = 110;
  p.min_file_bytes = 8 * 1024;
  p.max_file_bytes = 256 * 1024;
  return p;
}

inline double Kb(uint64_t bytes) { return bytes / 1024.0; }

}  // namespace fsx::bench

#endif  // FSYNC_BENCH_BENCH_UTIL_H_
