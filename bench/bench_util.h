// Shared helpers for the per-figure/table benchmark harnesses: reduced
// workload profiles, console headers, and the machine-readable
// BENCH_<name>.json report (schema fsx-bench-v1, documented in
// docs/benchmarks.md and validated by tools/validate_bench_json.py).
#ifndef FSYNC_BENCH_BENCH_UTIL_H_
#define FSYNC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "fsync/core/collection.h"
#include "fsync/obs/json.h"
#include "fsync/obs/sync_obs.h"
#include "fsync/workload/release.h"

namespace fsx::bench {

/// Returns the total byte size of a collection.
inline uint64_t CollectionBytes(const Collection& c) {
  uint64_t total = 0;
  for (const auto& [name, data] : c) {
    total += data.size();
  }
  return total;
}

/// Prints a standard header naming the experiment being reproduced.
inline void PrintHeader(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  --  %s\n", id.c_str(), what.c_str());
  std::printf("(synthetic stand-in workloads; compare shapes/ratios, not\n");
  std::printf(" absolute KB, against the paper)\n");
  std::printf("==============================================================\n");
}

/// Reduced-scale profiles so every bench binary finishes in seconds.
/// Raise num_files / sizes for a full-scale run.
inline ReleaseProfile BenchGccProfile() {
  ReleaseProfile p = GccLikeProfile();
  p.num_files = 150;
  p.min_file_bytes = 4 * 1024;   // ~27 KB average file, as in the paper's
  p.max_file_bytes = 192 * 1024; // gcc/emacs trees
  return p;
}

inline ReleaseProfile BenchEmacsProfile() {
  ReleaseProfile p = EmacsLikeProfile();
  p.num_files = 110;
  p.min_file_bytes = 8 * 1024;
  p.max_file_bytes = 256 * 1024;
  return p;
}

inline double Kb(uint64_t bytes) { return bytes / 1024.0; }

/// Wall-clock stopwatch for timing one benchmark row.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  uint64_t Ns() const {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One row of a benchmark report. `Total` alone suffices for analytic
/// bounds; `Traffic` adds the per-direction split; `Observed` pulls the
/// full per-phase attribution (and rounds/wall time) from a SyncObserver
/// that was attached to the run. Setters chain.
struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, std::string>> config;
  uint64_t rounds = 0;
  uint64_t wall_ns = 0;
  uint64_t total = 0;
  uint64_t up = 0;
  uint64_t down = 0;
  bool has_dirs = false;
  bool has_phases = false;
  bool has_throughput = false;
  uint64_t processed = 0;     // bytes pushed through the kernel
  double gib_per_s = 0.0;
  uint64_t phases[obs::kNumPhases][2] = {};

  BenchResult& Config(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
    return *this;
  }
  BenchResult& Config(const std::string& key, uint64_t value) {
    return Config(key, std::to_string(value));
  }
  BenchResult& Rounds(uint64_t n) {
    rounds = n;
    return *this;
  }
  BenchResult& WallNs(uint64_t ns) {
    wall_ns = ns;
    return *this;
  }
  BenchResult& Total(uint64_t bytes) {
    total = bytes;
    return *this;
  }
  BenchResult& Traffic(const TrafficStats& stats) {
    up = stats.client_to_server_bytes;
    down = stats.server_to_client_bytes;
    total = up + down;
    has_dirs = true;
    return *this;
  }
  /// Records a bandwidth measurement: `bytes_processed` bytes pushed
  /// through the benchmarked kernel in `ns` wall nanoseconds. Sets
  /// wall_ns too, so rate and raw timing travel together.
  BenchResult& Throughput(uint64_t bytes_processed, uint64_t ns) {
    processed = bytes_processed;
    wall_ns = ns;
    gib_per_s = ns == 0 ? 0.0
                        : static_cast<double>(bytes_processed) * 1e9 /
                              (static_cast<double>(ns) * 1073741824.0);
    has_throughput = true;
    return *this;
  }
  BenchResult& Observed(const obs::SyncObserver& o) {
    up = o.dir_bytes(obs::Flow::kUp);
    down = o.dir_bytes(obs::Flow::kDown);
    total = up + down;
    has_dirs = true;
    has_phases = true;
    for (int p = 0; p < obs::kNumPhases; ++p) {
      phases[p][0] = o.phase_bytes(static_cast<obs::Phase>(p),
                                   obs::Flow::kUp);
      phases[p][1] = o.phase_bytes(static_cast<obs::Phase>(p),
                                   obs::Flow::kDown);
    }
    rounds = o.rounds();
    wall_ns = o.wall_ns();
    return *this;
  }
};

/// Collects benchmark rows and, when `--json[=path]` was passed on the
/// command line, writes them as BENCH_<benchmark>.json in the current
/// directory (or to the given path). Without the flag everything is a
/// no-op, so the human-readable console output stays the default.
class JsonReport {
 public:
  JsonReport(std::string benchmark, std::string title)
      : benchmark_(std::move(benchmark)), title_(std::move(title)) {}

  /// Recognizes `--json` and `--json=<path>`; other arguments are left
  /// for the driver (none of the figure/table drivers take any).
  void ParseArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        enabled_ = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        enabled_ = true;
        path_ = argv[i] + 7;
      }
    }
  }
  bool enabled() const { return enabled_; }

  /// Describes (or, called repeatedly, extends) the workload the rows
  /// ran against; multi-dataset drivers accumulate files and bytes.
  void AddWorkload(const std::string& dataset, uint64_t files,
                   uint64_t bytes) {
    dataset_ = dataset_.empty() ? dataset : dataset_ + "+" + dataset;
    files_ += files;
    bytes_ += bytes;
  }

  BenchResult& Add(std::string name) {
    results_.emplace_back();
    results_.back().name = std::move(name);
    return results_.back();
  }

  /// Writes the report if enabled. Returns 0 on success (or when
  /// disabled), 1 on an I/O failure.
  int Write() const {
    if (!enabled_) {
      return 0;
    }
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.String("fsx-bench-v1");
    w.Key("benchmark");
    w.String(benchmark_);
    w.Key("title");
    w.String(title_);
    w.Key("workload");
    w.BeginObject();
    w.Key("dataset");
    w.String(dataset_);
    w.Key("files");
    w.Uint(files_);
    w.Key("bytes");
    w.Uint(bytes_);
    w.EndObject();
    w.Key("results");
    w.BeginArray();
    for (const BenchResult& r : results_) {
      w.BeginObject();
      w.Key("name");
      w.String(r.name);
      w.Key("config");
      w.BeginObject();
      for (const auto& [key, value] : r.config) {
        w.Key(key);
        w.String(value);
      }
      w.EndObject();
      w.Key("rounds");
      w.Uint(r.rounds);
      w.Key("wall_ns");
      w.Uint(r.wall_ns);
      if (r.has_throughput) {
        w.Key("throughput");
        w.BeginObject();
        w.Key("bytes_processed");
        w.Uint(r.processed);
        w.Key("gib_per_s");
        w.Double(r.gib_per_s);
        w.EndObject();
      }
      w.Key("bytes");
      w.BeginObject();
      w.Key("total");
      w.Uint(r.total);
      if (r.has_dirs) {
        w.Key("up");
        w.Uint(r.up);
        w.Key("down");
        w.Uint(r.down);
      }
      if (r.has_phases) {
        w.Key("phases");
        w.BeginObject();
        for (int p = 0; p < obs::kNumPhases; ++p) {
          if (r.phases[p][0] == 0 && r.phases[p][1] == 0) {
            continue;
          }
          w.Key(obs::PhaseName(static_cast<obs::Phase>(p)));
          w.BeginObject();
          w.Key("up");
          w.Uint(r.phases[p][0]);
          w.Key("down");
          w.Uint(r.phases[p][1]);
          w.EndObject();
        }
        w.EndObject();
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    std::string path =
        path_.empty() ? "BENCH_" + benchmark_ + ".json" : path_;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << w.Take() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
    return out.good() ? 0 : 1;
  }

 private:
  std::string benchmark_;
  std::string title_;
  std::string path_;
  std::string dataset_;
  uint64_t files_ = 0;
  uint64_t bytes_ = 0;
  bool enabled_ = false;
  std::vector<BenchResult> results_;
};

}  // namespace fsx::bench

#endif  // FSYNC_BENCH_BENCH_UTIL_H_
