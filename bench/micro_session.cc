// End-to-end protocol throughput (both endpoints in-process): MB of raw
// file data synchronized per second of CPU. The paper reports its
// unoptimized prototype at "up to a few MB of raw data per second" and
// flags CPU as the bottleneck on fast links; this bench tracks where this
// implementation stands and how the knobs move it.
#include <benchmark/benchmark.h>

#include "fsync/core/session.h"
#include "fsync/rsync/rsync.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

struct Pair {
  Bytes f_old;
  Bytes f_new;
};

Pair MakePair(size_t size, int edits) {
  Rng rng(17);
  Pair p;
  p.f_old = SynthSourceFile(rng, size);
  EditProfile ep;
  ep.num_edits = edits;
  p.f_new = ApplyEdits(p.f_old, ep, rng);
  return p;
}

void BM_SessionSync(benchmark::State& state) {
  Pair p = MakePair(state.range(0), 10);
  SyncConfig config;
  config.min_block_size = static_cast<uint32_t>(state.range(1));
  config.min_continuation_block =
      std::min<uint32_t>(16, config.min_block_size);
  uint64_t traffic = 0;
  for (auto _ : state) {
    SimulatedChannel channel;
    auto r = SynchronizeFile(p.f_old, p.f_new, config, channel);
    if (!r.ok() || r->reconstructed != p.f_new) {
      state.SkipWithError("sync failed");
      return;
    }
    traffic = r->stats.total_bytes();
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * p.f_new.size());
  state.counters["wire_bytes"] = static_cast<double>(traffic);
}
BENCHMARK(BM_SessionSync)
    ->Args({256 << 10, 64})
    ->Args({256 << 10, 256})
    ->Args({1 << 20, 64});

// Same sync with a SyncObserver attached (no trace sink): measures the
// cost of full per-phase byte attribution and round timing relative to
// BM_SessionSync above. The uninstrumented path (obs == nullptr, the
// default everywhere) costs only a branch per call site.
void BM_SessionSyncObserved(benchmark::State& state) {
  Pair p = MakePair(state.range(0), 10);
  SyncConfig config;
  config.min_block_size = static_cast<uint32_t>(state.range(1));
  config.min_continuation_block =
      std::min<uint32_t>(16, config.min_block_size);
  uint64_t attributed = 0;
  for (auto _ : state) {
    SimulatedChannel channel;
    obs::SyncObserver observer;
    auto r = SynchronizeFile(p.f_old, p.f_new, config, channel, &observer);
    if (!r.ok() || r->reconstructed != p.f_new) {
      state.SkipWithError("sync failed");
      return;
    }
    attributed = observer.total_bytes();
    benchmark::DoNotOptimize(observer);
  }
  state.SetBytesProcessed(state.iterations() * p.f_new.size());
  state.counters["attributed_bytes"] = static_cast<double>(attributed);
}
BENCHMARK(BM_SessionSyncObserved)
    ->Args({256 << 10, 64})
    ->Args({1 << 20, 64});

void BM_RsyncSync(benchmark::State& state) {
  Pair p = MakePair(state.range(0), 10);
  RsyncParams params;
  uint64_t traffic = 0;
  for (auto _ : state) {
    SimulatedChannel channel;
    auto r = RsyncSynchronize(p.f_old, p.f_new, params, channel);
    if (!r.ok() || r->reconstructed != p.f_new) {
      state.SkipWithError("rsync failed");
      return;
    }
    traffic = r->stats.total_bytes();
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * p.f_new.size());
  state.counters["wire_bytes"] = static_cast<double>(traffic);
}
BENCHMARK(BM_RsyncSync)->Args({256 << 10, 0})->Args({1 << 20, 0});

}  // namespace
}  // namespace fsx

BENCHMARK_MAIN();
