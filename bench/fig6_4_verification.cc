// Figure 6.4: match-verification strategies on the gcc data set. Compares
// the trivial scheme (one 16-bit hash per candidate, one batch) against
// optimized group testing with 1, 2, and 3 verification batches per
// round, and an aggressive large-group variant.
//
// Expected shape (paper): group verification beats trivial verification;
// almost all of the benefit arrives with one or two batches; being very
// aggressive about group size does not pay.
#include <cstdio>

#include "bench/bench_util.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(bench::BenchGccProfile());
  report.AddWorkload("gcc", pair.new_release.size(),
                     bench::CollectionBytes(pair.new_release));
  std::printf("data set: gcc-like, %zu files, %.1f MiB\n\n",
              pair.new_release.size(),
              bench::CollectionBytes(pair.new_release) / 1048576.0);

  std::printf("%-38s %10s %12s %12s\n", "verification strategy",
              "rt (max)", "c->s map KB", "total KB");

  struct Strategy {
    const char* label;
    int group_size;
    int batches;
    int verify_bits;
    bool adaptive;
  };
  const Strategy strategies[] = {
      {"trivial: 16-bit per candidate", 1, 1, 16, false},
      {"groups of 4, 1 batch", 4, 1, 16, false},
      {"groups of 8, 2 batches (salvage)", 8, 2, 16, false},
      {"groups of 8, 3 batches (salvage)", 8, 3, 16, false},
      {"adaptive groups, 2 batches", 8, 2, 16, true},
      {"aggressive: groups of 32, 3 batches", 32, 3, 16, false},
  };
  for (const Strategy& s : strategies) {
    SyncConfig config;
    config.start_block_size = 2048;
    config.min_block_size = 64;
    config.min_continuation_block = 16;
    config.verify.group_size = s.group_size;
    config.verify.continuation_group_size =
        std::max(1, s.group_size / 4);
    config.verify.max_batches = s.batches;
    config.verify.verify_bits = s.verify_bits;
    config.verify.adaptive_groups = s.adaptive;
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto r = SyncCollection(pair.old_release, pair.new_release, config,
                            &observer);
    if (!r.ok()) {
      std::fprintf(stderr, "sync failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    report.Add(s.label)
        .Config("group_size", static_cast<uint64_t>(s.group_size))
        .Config("max_batches", static_cast<uint64_t>(s.batches))
        .Config("verify_bits", static_cast<uint64_t>(s.verify_bits))
        .Config("adaptive_groups", s.adaptive ? "true" : "false")
        .Observed(observer)
        .Rounds(r->stats.roundtrips)
        .WallNs(timer.Ns());
    std::printf("%-38s %10llu %12.1f %12.1f\n", s.label,
                static_cast<unsigned long long>(r->stats.roundtrips),
                Kb(r->map_client_to_server_bytes),
                Kb(r->stats.total_bytes()));
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "fig6_4", "match-verification strategies (gcc data set)");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Figure 6.4", "match-verification strategies (gcc data set)");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
