// Table 6.1: best results using all techniques, for the gcc and emacs
// data sets, against rsync (default and per-file best block size) and the
// two delta compressors.
//
// Expected shape (paper): all-techniques protocol saves a factor of
// ~1.5-2.5 over rsync and lands within ~1.5-2x of the zdelta bound;
// vcdiff is slightly worse than zdelta.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/rsync/rsync.h"

namespace fsx {
namespace {

SyncConfig AllTechniquesConfig() {
  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;
  config.use_continuation = true;
  config.use_decomposable = true;
  config.verify.group_size = 8;
  config.verify.continuation_group_size = 2;
  config.verify.max_batches = 2;
  config.verify.adaptive_groups = true;
  return config;
}

int RunDataset(const char* name, const ReleaseProfile& profile,
               bench::JsonReport& report) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(profile);
  uint64_t total = bench::CollectionBytes(pair.new_release);
  report.AddWorkload(name, pair.new_release.size(), total);
  std::printf("\n--- %s-like data set: %zu files, %.1f MiB ---\n", name,
              pair.new_release.size(), total / 1048576.0);
  std::printf("%-26s %12s %10s\n", "method", "total KB", "vs full");

  auto row = [&](const char* label, uint64_t bytes) {
    report.Add(label).Config("dataset", name).Total(bytes);
    std::printf("%-26s %12.1f %9.2f%%\n", label, Kb(bytes),
                100.0 * bytes / total);
  };
  // Rows run through a channel carry the full per-phase attribution.
  auto observed_row = [&](const char* label,
                          const obs::SyncObserver& observer,
                          const CollectionSyncResult& r, uint64_t ns) {
    report.Add(label)
        .Config("dataset", name)
        .Observed(observer)
        .Rounds(r.stats.roundtrips)
        .WallNs(ns);
    std::printf("%-26s %12.1f %9.2f%%\n", label,
                Kb(r.stats.total_bytes()),
                100.0 * r.stats.total_bytes() / total);
  };

  row("uncompressed full",
      CollectionFullTransferBytes(pair.old_release, pair.new_release));
  row("compressed full",
      CollectionCompressedTransferBytes(pair.old_release,
                                        pair.new_release));

  RsyncParams def;
  obs::SyncObserver rs_obs;
  bench::WallTimer rs_timer;
  auto rs = SyncCollectionRsync(pair.old_release, pair.new_release, def,
                                &rs_obs);
  if (!rs.ok()) return 1;
  observed_row("rsync (b=700)", rs_obs, *rs, rs_timer.Ns());

  uint64_t best_total = 0;
  static const Bytes kEmpty;
  for (const auto& [fname, current] : pair.new_release) {
    auto it = pair.old_release.find(fname);
    const Bytes& outdated =
        it != pair.old_release.end() ? it->second : kEmpty;
    if (it != pair.old_release.end() && it->second == current) {
      continue;
    }
    auto best = RsyncBestBlockSize(outdated, current, def);
    if (!best.ok()) return 1;
    best_total += best->stats.total_bytes();
  }
  row("rsync (best b per file)", best_total);

  MultiroundParams mr_params;  // pure recursive partitioning (prior art)
  obs::SyncObserver mr_obs;
  bench::WallTimer mr_timer;
  auto mr = SyncCollectionMultiround(pair.old_release, pair.new_release,
                                     mr_params, &mr_obs);
  if (!mr.ok()) return 1;
  observed_row("multiround rsync", mr_obs, *mr, mr_timer.Ns());

  CdcSyncParams cdc_params;  // LBFS-style chunk exchange, extra baseline
  obs::SyncObserver cdc_obs;
  bench::WallTimer cdc_timer;
  auto cdc = SyncCollectionCdc(pair.old_release, pair.new_release,
                               cdc_params, &cdc_obs);
  if (!cdc.ok()) return 1;
  observed_row("cdc / LBFS-style", cdc_obs, *cdc, cdc_timer.Ns());

  obs::SyncObserver ours_obs;
  bench::WallTimer ours_timer;
  auto ours = SyncCollection(pair.old_release, pair.new_release,
                             AllTechniquesConfig(), &ours_obs);
  if (!ours.ok()) return 1;
  observed_row("this work (all techniques)", ours_obs, *ours,
               ours_timer.Ns());

  auto zd = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kZd);
  auto vc = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kVcdiff);
  auto bs = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kBsdiff);
  if (!zd.ok() || !vc.ok() || !bs.ok()) return 1;
  row("zdelta-style (bound)", *zd);
  row("vcdiff-style (bound)", *vc);
  row("bsdiff-style (bound)", *bs);

  std::printf("ratios: rsync/ours = %.2fx, ours/zdelta = %.2fx, "
              "max roundtrips = %llu\n",
              static_cast<double>(rs->stats.total_bytes()) /
                  ours->stats.total_bytes(),
              static_cast<double>(ours->stats.total_bytes()) / *zd,
              static_cast<unsigned long long>(ours->stats.roundtrips));
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "table6_1", "best results using all techniques (gcc and emacs)");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader("Table 6.1",
                          "best results using all techniques (gcc and "
                          "emacs data sets)");
  if (fsx::RunDataset("gcc", fsx::bench::BenchGccProfile(), report)) {
    return 1;
  }
  if (fsx::RunDataset("emacs", fsx::bench::BenchEmacsProfile(), report)) {
    return 1;
  }
  return report.Write();
}
