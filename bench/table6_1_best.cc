// Table 6.1: best results using all techniques, for the gcc and emacs
// data sets, against rsync (default and per-file best block size) and the
// two delta compressors.
//
// Expected shape (paper): all-techniques protocol saves a factor of
// ~1.5-2.5 over rsync and lands within ~1.5-2x of the zdelta bound;
// vcdiff is slightly worse than zdelta.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/rsync/rsync.h"

namespace fsx {
namespace {

SyncConfig AllTechniquesConfig() {
  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;
  config.use_continuation = true;
  config.use_decomposable = true;
  config.verify.group_size = 8;
  config.verify.continuation_group_size = 2;
  config.verify.max_batches = 2;
  config.verify.adaptive_groups = true;
  return config;
}

int RunDataset(const char* name, const ReleaseProfile& profile) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(profile);
  uint64_t total = bench::CollectionBytes(pair.new_release);
  std::printf("\n--- %s-like data set: %zu files, %.1f MiB ---\n", name,
              pair.new_release.size(), total / 1048576.0);
  std::printf("%-26s %12s %10s\n", "method", "total KB", "vs full");

  auto row = [&](const char* label, uint64_t bytes) {
    std::printf("%-26s %12.1f %9.2f%%\n", label, Kb(bytes),
                100.0 * bytes / total);
  };

  row("uncompressed full",
      CollectionFullTransferBytes(pair.old_release, pair.new_release));
  row("compressed full",
      CollectionCompressedTransferBytes(pair.old_release,
                                        pair.new_release));

  RsyncParams def;
  auto rs = SyncCollectionRsync(pair.old_release, pair.new_release, def);
  if (!rs.ok()) return 1;
  row("rsync (b=700)", rs->stats.total_bytes());

  uint64_t best_total = 0;
  static const Bytes kEmpty;
  for (const auto& [fname, current] : pair.new_release) {
    auto it = pair.old_release.find(fname);
    const Bytes& outdated =
        it != pair.old_release.end() ? it->second : kEmpty;
    if (it != pair.old_release.end() && it->second == current) {
      continue;
    }
    auto best = RsyncBestBlockSize(outdated, current, def);
    if (!best.ok()) return 1;
    best_total += best->stats.total_bytes();
  }
  row("rsync (best b per file)", best_total);

  MultiroundParams mr_params;  // pure recursive partitioning (prior art)
  auto mr = SyncCollectionMultiround(pair.old_release, pair.new_release,
                                     mr_params);
  if (!mr.ok()) return 1;
  row("multiround rsync", mr->stats.total_bytes());

  CdcSyncParams cdc_params;  // LBFS-style chunk exchange, extra baseline
  auto cdc = SyncCollectionCdc(pair.old_release, pair.new_release,
                               cdc_params);
  if (!cdc.ok()) return 1;
  row("cdc / LBFS-style", cdc->stats.total_bytes());

  auto ours = SyncCollection(pair.old_release, pair.new_release,
                             AllTechniquesConfig());
  if (!ours.ok()) return 1;
  row("this work (all techniques)", ours->stats.total_bytes());

  auto zd = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kZd);
  auto vc = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kVcdiff);
  auto bs = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                 DeltaCodec::kBsdiff);
  if (!zd.ok() || !vc.ok() || !bs.ok()) return 1;
  row("zdelta-style (bound)", *zd);
  row("vcdiff-style (bound)", *vc);
  row("bsdiff-style (bound)", *bs);

  std::printf("ratios: rsync/ours = %.2fx, ours/zdelta = %.2fx, "
              "max roundtrips = %llu\n",
              static_cast<double>(rs->stats.total_bytes()) /
                  ours->stats.total_bytes(),
              static_cast<double>(ours->stats.total_bytes()) / *zd,
              static_cast<unsigned long long>(ours->stats.roundtrips));
  return 0;
}

}  // namespace
}  // namespace fsx

int main() {
  fsx::bench::PrintHeader("Table 6.1",
                          "best results using all techniques (gcc and "
                          "emacs data sets)");
  if (fsx::RunDataset("gcc", fsx::bench::BenchGccProfile())) return 1;
  if (fsx::RunDataset("emacs", fsx::bench::BenchEmacsProfile())) return 1;
  return 0;
}
