// Ablation: identifying the changed files. The paper uses a plain
// per-file fingerprint exchange ("efficient enough for our data sets")
// and defers smarter schemes to the changed-file-identification
// literature it surveys; this bench quantifies that tradeoff with the
// Merkle-trie reconciler: hash-tree probing wins when few files changed,
// the flat exchange wins under heavy churn.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/reconcile/merkle.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  const int kFiles = 5000;
  Rng rng(0xF11E5);
  FileDigestMap client;
  for (int i = 0; i < kFiles; ++i) {
    Fingerprint fp;
    Bytes r = rng.RandomBytes(16);
    std::copy(r.begin(), r.end(), fp.begin());
    client["pages/p" + std::to_string(i) + ".html"] = fp;
  }
  uint64_t flat = FullExchangeBytes(client);
  report.AddWorkload("digest-map", kFiles, flat);
  report.Add("flat fingerprint exchange").Total(flat);
  std::printf("collection: %d files; flat fingerprint exchange = %.1f KB\n\n",
              kFiles, flat / 1024.0);
  std::printf("%-18s %14s %10s %14s\n", "changed fraction",
              "merkle KB", "rounds", "vs flat");

  for (double frac : {0.0, 0.001, 0.01, 0.05, 0.2, 0.5}) {
    FileDigestMap server = client;
    int changes = static_cast<int>(frac * kFiles);
    auto it = server.begin();
    for (int i = 0; i < changes && it != server.end(); ++i) {
      std::advance(it, 1 + rng.Uniform(3));
      if (it == server.end()) {
        break;
      }
      it->second[rng.Uniform(16)] ^= 0x5A;
    }
    SimulatedChannel channel;
    MerkleParams params;
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto r = MerkleReconcile(client, server, params, channel, &observer);
    if (!r.ok()) {
      std::fprintf(stderr, "reconcile failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    char label[48];
    std::snprintf(label, sizeof(label), "merkle, %.1f%% changed",
                  100 * frac);
    report.Add(label)
        .Config("changed_fraction", std::to_string(frac))
        .Observed(observer)
        .Rounds(static_cast<uint64_t>(r->rounds))
        .WallNs(timer.Ns());
    std::printf("%17.1f%% %14.1f %10d %13.2fx\n", 100 * frac,
                r->stats.total_bytes() / 1024.0, r->rounds,
                static_cast<double>(flat) / r->stats.total_bytes());
  }
  std::printf("\n(ratios > 1 favour the Merkle trie; the flat exchange\n"
              " needs no extra roundtrips, which the trie pays in rounds)\n");
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "ablation_reconcile",
      "changed-file identification: flat fingerprints vs Merkle trie");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Ablation (reconcile)",
      "changed-file identification: flat fingerprints vs Merkle trie");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
