// Figure 6.2: performance of the basic protocol with different minimum
// block sizes on the emacs data set (same sweep as Figure 6.1).
#include "bench/basic_sweep.h"

int main() {
  fsx::bench::PrintHeader(
      "Figure 6.2", "basic protocol vs min block size (emacs data set)");
  return fsx::bench_basic::Run(fsx::bench::BenchEmacsProfile(), "emacs");
}
