// Figure 6.2: performance of the basic protocol with different minimum
// block sizes on the emacs data set (same sweep as Figure 6.1).
//
// `--json[=path]` additionally writes BENCH_fig6_2.json (fsx-bench-v1).
#include "bench/basic_sweep.h"

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "fig6_2", "basic protocol vs min block size (emacs data set)");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Figure 6.2", "basic protocol vs min block size (emacs data set)");
  int rc = fsx::bench_basic::Run(fsx::bench::BenchEmacsProfile(), "emacs",
                                 report);
  return rc != 0 ? rc : report.Write();
}
