// GB/s-per-core sweep over the sync hot paths, scalar vs hardware
// dispatch: CRC32C (slice-by-4 vs SSE4.2/ARMv8 three-stream), the
// rolling weak-hash scan loop (tabled Adler vs GEAR), batched strong-
// hash verification (scalar MD5 vs 4-lane interleaved), and the two
// end-to-end kernels those feed — server signature generation
// (MakeZsyncControl) and client scan (PlanFromControl).
//
// Run with --json[=path] to emit BENCH_throughput_sweep.json
// (fsx-bench-v1, with the per-result "throughput" object). Run with
// --check to enforce the PR acceptance bars as exit status:
//   - HW CRC32C >= 3x slice-by-4 (only on machines exposing a HW tier);
//   - batched MD5 verify >= 1.0x scalar (it must never lose);
//   - GEAR scan >= 1.3x the Adler scan (the config-gated fast weak
//     hash, which is where the e2e client-scan speedup comes from);
//   - e2e client scan under HW dispatch >= 0.9x scalar (neutrality
//     smoke: the weak/strong hashes there never touch CRC32C, so the
//     dispatch layer must be invisible modulo timer noise).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fsync/hash/crc32c.h"
#include "fsync/hash/gear.h"
#include "fsync/hash/md5.h"
#include "fsync/hash/md5_batch.h"
#include "fsync/hash/tabled_adler.h"
#include "fsync/index/scan.h"
#include "fsync/multiround/multiround.h"
#include "fsync/net/channel.h"
#include "fsync/simd/crc32c_kernels.h"
#include "fsync/simd/dispatch.h"
#include "fsync/util/random.h"
#include "fsync/zsync/zsync.h"

namespace fsx {
namespace {

constexpr size_t kBufBytes = 8 * 1024 * 1024;  // hot-loop working set
constexpr int kReps = 5;                       // best-of reps per cell

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

Bytes MakeBuffer(Rng& rng, size_t n) {
  Bytes b(n);
  for (size_t i = 0; i < n; i += 8) {
    uint64_t v = rng.Next();
    for (size_t k = 0; k < 8 && i + k < n; ++k) {
      b[i + k] = static_cast<uint8_t>(v >> (8 * k));
    }
  }
  return b;
}

// Best-of-kReps wall time for `run` (which returns a value to sink).
uint64_t BestOf(const std::function<uint64_t()>& run) {
  uint64_t best = ~uint64_t{0};
  for (int r = 0; r < kReps; ++r) {
    bench::WallTimer t;
    g_sink = g_sink + run();
    uint64_t ns = t.Ns();
    best = ns < best ? ns : best;
  }
  return best;
}

double GibPerS(uint64_t bytes, uint64_t ns) {
  return ns == 0 ? 0.0
                 : static_cast<double>(bytes) * 1e9 /
                       (static_cast<double>(ns) * 1073741824.0);
}

struct Row {
  std::string name;
  std::string tier;
  uint64_t bytes = 0;
  uint64_t ns = 0;
  double Rate() const { return GibPerS(bytes, ns); }
};

void Print(const Row& row) {
  std::printf("  %-28s %-8s %8.3f GiB/s\n", row.name.c_str(),
              row.tier.c_str(), row.Rate());
}

// ---- CRC32C: whole-buffer checksum, per dispatch tier. ----
Row BenchCrc(ByteSpan buf, simd::DispatchTier tier) {
  simd::ForceTier(tier);
  Row row{"crc32c", simd::TierName(tier), buf.size(), 0};
  row.ns = BestOf([&] {
    return static_cast<uint64_t>(Crc32cUpdate(~0u, buf));
  });
  simd::ForceTier(std::nullopt);
  return row;
}

// ---- Rolling scan: slide a window over the buffer with no matching
// keys — the per-byte cost every client pays on unmatched data. ----
template <typename Hash>
Row BenchScan(ByteSpan buf, const char* name, uint64_t block_size) {
  std::vector<uint32_t> keys = {0xFFFFFFFFu};  // 32-bit key: ~no hits
  std::vector<uint64_t> pos;
  Row row{name, "scalar", buf.size(), 0};
  row.ns = BestOf([&] {
    ScanForKeys<Hash>(
        buf, block_size, 32, keys, [](size_t, uint64_t) { return false; },
        pos);
    return pos[0];
  });
  return row;
}

// ---- Strong-hash verify: hash n equal-size blocks, scalar vs 4-lane
// batch. ----
Row BenchVerify(ByteSpan buf, uint64_t block_size, bool batched) {
  const size_t n = buf.size() / block_size;
  std::vector<ByteSpan> blocks(n);
  for (size_t i = 0; i < n; ++i) {
    blocks[i] = buf.subspan(i * block_size, block_size);
  }
  std::vector<uint64_t> out(n);
  Row row{"md5-verify", batched ? "batch4" : "scalar", n * block_size, 0};
  row.ns = BestOf([&] {
    if (batched) {
      Md5HashBitsBatch(blocks.data(), n, 64, 0xA11, out.data());
    } else {
      for (size_t i = 0; i < n; ++i) {
        out[i] = Md5::HashBits(blocks[i], 64, 0xA11);
      }
    }
    return out[0];
  });
  return row;
}

// ---- End-to-end kernels: zsync signature generation and client scan
// over a shifted copy (every block matches, at an offset the rolling
// scan must find). ----
Row BenchServerSignature(ByteSpan current, simd::DispatchTier tier) {
  simd::ForceTier(tier);
  ZsyncParams params;
  params.block_size = 2048;
  Row row{"e2e-server-signature", simd::TierName(tier), current.size(), 0};
  row.ns = BestOf([&] {
    auto control = MakeZsyncControl(current, params);
    return control.ok() ? control.value().size() : 0;
  });
  simd::ForceTier(std::nullopt);
  return row;
}

Row BenchClientScan(ByteSpan outdated, ByteSpan control,
                    simd::DispatchTier tier) {
  simd::ForceTier(tier);
  Row row{"e2e-client-scan", simd::TierName(tier), outdated.size(), 0};
  row.ns = BestOf([&] {
    auto plan = PlanFromControl(outdated, control);
    return plan.ok() ? plan.value().sources.size() : 0;
  });
  simd::ForceTier(std::nullopt);
  return row;
}

// ---- Full multiround session, Adler vs GEAR weak hash: the one knob
// that changes e2e client-scan bandwidth (both runs reconstruct the
// identical file; only the weak-hash wire values differ). ----
Row BenchMultiround(ByteSpan outdated, ByteSpan current, bool use_gear) {
  MultiroundParams params;
  params.use_gear = use_gear;
  Row row{"e2e-multiround", use_gear ? "gear" : "adler", outdated.size(),
          0};
  row.ns = BestOf([&] {
    SimulatedChannel channel;
    auto r = MultiroundSynchronize(outdated, current, params, channel);
    return r.ok() ? r.value().reconstructed.size() : 0;
  });
  return row;
}

int Main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    }
  }
  bench::JsonReport report("throughput_sweep",
                           "Hot-path GB/s per core, scalar vs hardware "
                           "dispatch");
  report.ParseArgs(argc, argv);
  bench::PrintHeader("throughput_sweep",
                     "hot-path bandwidth: CRC32C / scan / verify / e2e");
  std::printf("dispatch: %s\n\n", simd::DescribeDispatch().c_str());

  Rng rng(0xBE7C4);
  Bytes buf = MakeBuffer(rng, kBufBytes);
  report.AddWorkload("synthetic-uniform", 1, buf.size());

  std::vector<Row> rows;
  auto add = [&](Row row) {
    Print(row);
    report.Add(row.name)
        .Config("dispatch_tier", row.tier)
        .Throughput(row.bytes, row.ns)
        .Total(0);
    rows.push_back(std::move(row));
  };
  auto rate_of = [&](const char* name, const char* tier) {
    for (const Row& r : rows) {
      if (r.name == name && r.tier == tier) {
        return r.Rate();
      }
    }
    return 0.0;
  };

  for (simd::DispatchTier tier : simd::AvailableTiers()) {
    add(BenchCrc(buf, tier));
  }
  add(BenchScan<AdlerScanHash>(buf, "scan-adler", 2048));
  add(BenchScan<GearScanHash>(buf, "scan-gear", 2048));
  add(BenchVerify(buf, 2048, /*batched=*/false));
  add(BenchVerify(buf, 2048, /*batched=*/true));

  // The e2e pair syncs `buf` against a copy shifted by half a block, so
  // every block exists in the haystack but never on its natural
  // boundary — the rolling scan runs at full per-byte cost.
  Bytes shifted(buf.begin() + 1024, buf.end());
  ZsyncParams params;
  params.block_size = 2048;
  auto control = MakeZsyncControl(buf, params);
  for (simd::DispatchTier tier : simd::AvailableTiers()) {
    add(BenchServerSignature(buf, tier));
    if (control.ok()) {
      add(BenchClientScan(shifted, control.value(), tier));
    }
  }
  add(BenchMultiround(shifted, buf, /*use_gear=*/false));
  add(BenchMultiround(shifted, buf, /*use_gear=*/true));

  int rc = report.Write();
  if (check && rc == 0) {
    const char* hw_tier = nullptr;
    for (simd::DispatchTier tier : simd::AvailableTiers()) {
      if (tier != simd::DispatchTier::kScalar) {
        hw_tier = simd::TierName(tier);
      }
    }
    auto gate = [&](const char* what, double got, double bar) {
      bool ok = got >= bar;
      std::printf("check: %-34s %5.2fx (bar %.2fx) %s\n", what, got, bar,
                  ok ? "ok" : "FAIL");
      if (!ok) rc = 1;
    };
    if (hw_tier != nullptr) {
      gate("crc32c hw vs scalar",
           rate_of("crc32c", hw_tier) / rate_of("crc32c", "scalar"), 3.0);
      gate("e2e-client-scan hw vs scalar",
           rate_of("e2e-client-scan", hw_tier) /
               rate_of("e2e-client-scan", "scalar"),
           0.9);
    } else {
      std::printf("check: no hardware tier on this machine; CRC/e2e "
                  "dispatch gates skipped\n");
    }
    gate("scan gear vs adler",
         rate_of("scan-gear", "scalar") / rate_of("scan-adler", "scalar"),
         1.3);
    gate("md5 batch4 vs scalar",
         rate_of("md5-verify", "batch4") / rate_of("md5-verify", "scalar"),
         1.0);
  }
  return rc;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) { return fsx::Main(argc, argv); }
