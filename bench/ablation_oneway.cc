// Ablation: the one-way deployments (paper Section 7's asymmetric cases)
// against the interactive protocol. zsync publishes a fixed-block control
// file and serves byte ranges; the hash cast publishes the full recursive
// hash tree and serves a delta; the interactive protocol tailors every
// round to the client but needs a live server. Each column is one file
// pair at several staleness levels.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/core/broadcast.h"
#include "fsync/core/session.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"
#include "fsync/zsync/zsync.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  Rng rng(0x0E1);
  Bytes base = SynthSourceFile(rng, 400 * 1024);
  std::vector<Bytes> versions = {base};
  for (int i = 0; i < 4; ++i) {
    EditProfile ep;
    ep.num_edits = 12;
    versions.push_back(ApplyEdits(versions.back(), ep, rng));
  }
  const Bytes& latest = versions.back();
  report.AddWorkload("synthetic-document", 1, latest.size());
  std::printf("document: %zu KiB, 4 staleness levels\n\n",
              latest.size() / 1024);

  ZsyncParams zp;
  auto control = MakeZsyncControl(latest, zp);
  if (!control.ok()) return 1;
  HashCastConfig hc;
  auto cast = BuildHashCast(latest, hc);
  if (!cast.ok()) return 1;
  std::printf("published artifacts: zsync control %.1f KiB, hash cast "
              "%.1f KiB (each paid once per update)\n\n",
              control->size() / 1024.0, cast->size() / 1024.0);

  std::printf("%-6s %22s %22s %16s\n", "lag", "zsync req+data KiB",
              "hashcast req+delta KiB", "interactive KiB");
  for (int lag = 1; lag <= 4; ++lag) {
    const Bytes& f_old = versions[versions.size() - 1 - lag];

    auto plan = PlanFromControl(f_old, *control);
    if (!plan.ok()) return 1;
    Bytes zreq = EncodeRangeRequest(*plan);
    auto zdata = ServeRanges(latest, zreq, zp);
    if (!zdata.ok()) return 1;
    auto zout = ApplyZsync(f_old, *plan, *zdata);
    if (!zout.ok() || *zout != latest) {
      std::fprintf(stderr, "zsync mismatch at lag %d\n", lag);
      return 1;
    }

    auto map = ApplyHashCast(f_old, *cast);
    if (!map.ok()) return 1;
    Bytes creq = EncodeCastRequest(*map);
    auto cdelta = MakeCastDelta(latest, creq, hc);
    if (!cdelta.ok()) return 1;
    auto cout_ = ApplyCastDelta(f_old, *map, *cdelta);
    if (!cout_.ok() || *cout_ != latest) {
      std::fprintf(stderr, "hashcast mismatch at lag %d\n", lag);
      return 1;
    }

    SyncConfig sc;
    SimulatedChannel channel;
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto inter = SynchronizeFile(f_old, latest, sc, channel, &observer);
    if (!inter.ok()) return 1;

    char label[48];
    std::snprintf(label, sizeof(label), "zsync, lag %d", lag);
    report.Add(label)
        .Config("lag", static_cast<uint64_t>(lag))
        .Total(zreq.size() + zdata->size());
    std::snprintf(label, sizeof(label), "hashcast, lag %d", lag);
    report.Add(label)
        .Config("lag", static_cast<uint64_t>(lag))
        .Total(creq.size() + cdelta->size());
    std::snprintf(label, sizeof(label), "interactive, lag %d", lag);
    report.Add(label)
        .Config("lag", static_cast<uint64_t>(lag))
        .Observed(observer)
        .Rounds(inter->stats.roundtrips)
        .WallNs(timer.Ns());

    std::printf("%-6d %22.1f %22.1f %16.1f\n", lag,
                (zreq.size() + zdata->size()) / 1024.0,
                (creq.size() + cdelta->size()) / 1024.0,
                inter->stats.total_bytes() / 1024.0);
  }
  std::printf(
      "\n(one-way columns exclude the published artifact; add its\n"
      " amortized share for a given audience size. zsync fetches raw\n"
      " ranges at block granularity; the hash cast's finer map + delta\n"
      " coder transfers less per client at a larger published size)\n");
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "ablation_oneway",
      "zsync-style vs hash-cast vs interactive synchronization");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Ablation (one-way)",
      "zsync-style vs hash-cast vs interactive synchronization");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
