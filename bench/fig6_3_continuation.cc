// Figure 6.3: adding continuation hashes. The sweep varies the minimum
// block size reached *via continuation hashes* (which cost only a few
// bits because they are checked at one aligned position), while global
// hashes stop at a larger minimum. The leftmost row reproduces the
// figure's leftmost bar: group verification but no continuation.
//
// Expected shape (paper): continuation hashes profitably extend the
// recursion to much smaller blocks (16 bytes or less), reducing total
// cost moderately below the best no-continuation configuration, and the
// best global minimum shifts upward (e.g. 128) once continuation handles
// the fine-grained tail.
#include <cstdio>

#include "bench/bench_util.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(bench::BenchGccProfile());
  report.AddWorkload("gcc", pair.new_release.size(),
                     bench::CollectionBytes(pair.new_release));
  std::printf("data set: gcc-like, %zu files, %.1f MiB\n\n",
              pair.new_release.size(),
              bench::CollectionBytes(pair.new_release) / 1048576.0);

  std::printf("%-34s %12s %12s %12s\n", "configuration", "map KB",
              "delta KB", "total KB");

  auto run_one = [&](const char* label, uint32_t min_global,
                     uint32_t min_cont, bool use_cont) -> int {
    SyncConfig config;
    config.start_block_size = 2048;
    config.min_block_size = min_global;
    config.min_continuation_block = use_cont ? min_cont : min_global;
    config.use_continuation = use_cont;
    config.verify.group_size = 8;  // group verification throughout
    config.verify.max_batches = 2;
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto r = SyncCollection(pair.old_release, pair.new_release, config,
                            &observer);
    if (!r.ok()) {
      std::fprintf(stderr, "sync failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    report.Add(label)
        .Config("min_block", min_global)
        .Config("min_continuation_block", config.min_continuation_block)
        .Config("use_continuation", use_cont ? "true" : "false")
        .Observed(observer)
        .Rounds(r->stats.roundtrips)
        .WallNs(timer.Ns());
    std::printf("%-34s %12.1f %12.1f %12.1f\n", label,
                Kb(r->map_server_to_client_bytes +
                   r->map_client_to_server_bytes),
                Kb(r->delta_bytes), Kb(r->stats.total_bytes()));
    return 0;
  };

  if (run_one("no continuation, min b=64", 64, 64, false)) return 1;
  for (uint32_t min_global : {128u, 64u}) {
    for (uint32_t min_cont : {32u, 16u, 8u}) {
      char label[64];
      std::snprintf(label, sizeof(label),
                    "continuation to %u, global min %u", min_cont,
                    min_global);
      if (run_one(label, min_global, min_cont, true)) return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "fig6_3",
      "continuation hashes with varying minimum block sizes (gcc)");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader("Figure 6.3",
                          "continuation hashes with varying minimum block "
                          "sizes (gcc data set)");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
