// Shared implementation of the Figure 6.1 / 6.2 sweeps: the basic
// protocol (recursive halving + decomposable hashes + per-candidate
// verification) across minimum block sizes, vs rsync and zdelta.
#ifndef FSYNC_BENCH_BASIC_SWEEP_H_
#define FSYNC_BENCH_BASIC_SWEEP_H_

#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/rsync/rsync.h"

namespace fsx {
namespace bench_basic {

SyncConfig BasicConfig(uint32_t min_block) {
  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = min_block;
  config.min_continuation_block = min_block;  // continuation disabled
  config.use_continuation = false;
  config.use_decomposable = true;
  config.verify.group_size = 1;  // per-candidate verification
  config.verify.max_batches = 1;
  return config;
}

int Run(const ReleaseProfile& profile, const char* dataset,
        bench::JsonReport& report) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(profile);
  uint64_t total = bench::CollectionBytes(pair.new_release);
  report.AddWorkload(dataset, pair.new_release.size(), total);
  std::printf("data set: %s-like, %zu files, %.1f MiB\n\n", dataset,
              pair.new_release.size(), total / 1048576.0);

  std::printf("%-22s %12s %12s %12s %12s\n", "method", "s->c map KB",
              "c->s map KB", "delta KB", "total KB");

  for (uint32_t min_block : {512u, 256u, 128u, 64u, 32u, 16u}) {
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto r = SyncCollection(pair.old_release, pair.new_release,
                            BasicConfig(min_block), &observer);
    if (!r.ok()) {
      std::fprintf(stderr, "sync failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "basic, min b=%u", min_block);
    report.Add(label)
        .Config("min_block", min_block)
        .Observed(observer)
        .Rounds(r->stats.roundtrips)
        .WallNs(timer.Ns());
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", label,
                Kb(r->map_server_to_client_bytes),
                Kb(r->map_client_to_server_bytes), Kb(r->delta_bytes),
                Kb(r->stats.total_bytes()));
  }

  RsyncParams def;
  obs::SyncObserver rsync_observer;
  bench::WallTimer rsync_timer;
  auto rs = SyncCollectionRsync(pair.old_release, pair.new_release, def,
                                &rsync_observer);
  if (!rs.ok()) {
    return 1;
  }
  report.Add("rsync (b=700)")
      .Config("block_size", 700)
      .Observed(rsync_observer)
      .Rounds(rs->stats.roundtrips)
      .WallNs(rsync_timer.Ns());
  std::printf("%-22s %12s %12s %12s %12.1f\n", "rsync (b=700)", "-", "-",
              "-", Kb(rs->stats.total_bytes()));

  // Idealized rsync: per-file best block size.
  uint64_t best_total = 0;
  {
    static const Bytes kEmpty;
    for (const auto& [name, current] : pair.new_release) {
      auto it = pair.old_release.find(name);
      const Bytes& outdated =
          it != pair.old_release.end() ? it->second : kEmpty;
      if (it != pair.old_release.end() && it->second == current) {
        continue;
      }
      auto best = RsyncBestBlockSize(outdated, current, def);
      if (!best.ok()) {
        return 1;
      }
      best_total += best->stats.total_bytes();
    }
  }
  report.Add("rsync (best b/file)").Total(best_total);
  std::printf("%-22s %12s %12s %12s %12.1f\n", "rsync (best b/file)", "-",
              "-", "-", Kb(best_total));

  auto bound = CollectionDeltaBytes(pair.old_release, pair.new_release,
                                    DeltaCodec::kZd);
  if (!bound.ok()) {
    return 1;
  }
  report.Add("zdelta-style bound").Total(*bound);
  std::printf("%-22s %12s %12s %12s %12.1f\n", "zdelta-style bound", "-",
              "-", "-", Kb(*bound));
  return 0;
}

}  // namespace bench_basic
}  // namespace fsx


#endif  // FSYNC_BENCH_BASIC_SWEEP_H_
