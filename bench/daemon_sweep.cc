// Daemon fan-out sweep: N concurrent loopback clients against one real
// SyncDaemon (epoll event loop, multiplexed per-file streams — the
// netd/ subsystem, not SimulatedChannel). Measures what the in-process
// fanout_sweep cannot: event-loop scheduling, socket I/O, backpressure,
// and the shared server cache under true concurrency.
//
// For each N in 1..128 the daemon is started fresh with its shared
// signature/delta cache enabled; the first clients warm it and the rest
// ride it, so server CPU per added client collapses toward the bytes it
// ships (docs/caching.md cost model). Reported per row: wall time for
// the whole herd, cumulative endpoint CPU, loop-thread CPU, and wire
// bytes — all from DaemonStats, with every replica verified
// bit-identical to the served tree before the row counts.
//
// `--json[=path]` additionally writes BENCH_daemon_sweep.json
// (fsx-bench-v1).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fsync/netd/client.h"
#include "fsync/netd/daemon.h"
#include "fsync/workload/tree.h"

namespace fsx {
namespace {

constexpr int kClientSweep[] = {1, 2, 4, 8, 16, 32, 64, 128};

struct SweepRow {
  uint64_t wall_ns = 0;
  netd::DaemonStats stats;
};

StatusOr<SweepRow> RunHerd(const Collection& server_tree,
                           const Collection& stale, int clients) {
  netd::DaemonOptions options;
  options.max_connections = 512;  // above the sweep ceiling
  netd::SyncDaemon daemon(server_tree, options);
  FSYNC_RETURN_IF_ERROR(daemon.Start());

  std::vector<Status> failures(clients, Status::Ok());
  bench::WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        netd::ClientOptions opts;
        opts.port = daemon.port();
        auto r = netd::RunSyncClient(stale, opts);
        if (!r.ok()) {
          failures[i] = r.status();
        } else if (r->reconstructed != server_tree) {
          failures[i] = Status::Internal("replica mismatch");
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  SweepRow row;
  row.wall_ns = timer.Ns();
  daemon.Drain();
  daemon.Join();
  row.stats = daemon.stats();
  for (const Status& st : failures) {
    FSYNC_RETURN_IF_ERROR(st);
  }
  return row;
}

int Run(bench::JsonReport& report) {
  TreeChurnProfile profile = ReleaseTreeProfile(48);
  profile.seed = 0xDA3;
  TreePair pair = MakeTreeWorkload(profile);
  report.AddWorkload("daemon-release-tree", pair.new_tree.size(),
                     bench::CollectionBytes(pair.new_tree));

  std::printf("%zu files served, %zu in each stale replica\n\n",
              pair.new_tree.size(), pair.old_tree.size());
  uint64_t prev_cpu = 0;
  int prev_n = 0;
  for (int n : kClientSweep) {
    StatusOr<SweepRow> row = RunHerd(pair.new_tree, pair.old_tree, n);
    if (!row.ok()) {
      std::fprintf(stderr, "N=%d failed: %s\n", n,
                   row.status().message().c_str());
      return 1;
    }
    const netd::DaemonStats& s = row->stats;
    // Each row is an independent daemon, so the endpoint-CPU delta
    // between rows can go negative (cache warm-up noise); clamp at 0.
    const int64_t delta =
        static_cast<int64_t>(s.server_cpu_ns) - static_cast<int64_t>(prev_cpu);
    const uint64_t added_cpu =
        n > prev_n && delta > 0
            ? static_cast<uint64_t>(delta) / static_cast<uint64_t>(n - prev_n)
            : 0;
    std::printf(
        "  N=%3d  wall %8.2f ms  endpoint CPU %8.2f ms "
        "(%7.3f ms/added client)  loop CPU %8.2f ms  wire %9.1f KB\n",
        n, row->wall_ns / 1e6, s.server_cpu_ns / 1e6, added_cpu / 1e6,
        s.loop_thread_cpu_ns / 1e6, (s.bytes_in + s.bytes_out) / 1024.0);
    bench::BenchResult& out = report.Add("daemon/N=" + std::to_string(n));
    out.Config("clients", static_cast<uint64_t>(n))
        .Config("sessions_completed", s.sessions_completed)
        .Config("server_cpu_ns", s.server_cpu_ns)
        .Config("server_cpu_ns_per_added_client", added_cpu)
        .Config("loop_thread_cpu_ns", s.loop_thread_cpu_ns)
        .Config("backpressure_stalls", s.backpressure_stalls)
        .Rounds(static_cast<uint64_t>(n))
        .WallNs(row->wall_ns)
        .Total(s.bytes_in + s.bytes_out);
    prev_cpu = s.server_cpu_ns;
    prev_n = n;
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "daemon_sweep",
      "real-socket daemon fan-out: wall time and server CPU vs N clients");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Daemon sweep",
      "N loopback clients against one epoll sync daemon, shared cache");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
