// Whole-tree sync at scale: manifest reconciliation + rename adoption +
// small-file batching (SyncCollectionTree) against the per-file
// fingerprint-announce batched driver (SyncCollectionBatched) on large
// trees with ~1% churn. The tree protocol's announce cost is
// O(set difference) instead of O(n) fingerprints, which dominates when
// almost nothing changed; the high-latency link model converts rounds
// and bytes into wall-clock over a slow link. --files=N rescales both
// workloads (default 20000; the headline run uses --files=100000).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "fsync/workload/tree.h"

namespace fsx {
namespace {

struct Row {
  const char* protocol;
  TrafficStats stats;
  uint64_t rounds = 0;
  uint64_t adopted = 0;
  uint64_t small = 0;
  uint64_t sessioned = 0;
};

int RunWorkload(bench::JsonReport& report, const char* dataset,
                const TreeChurnProfile& profile, const LinkModel& link) {
  TreePair pair = MakeTreeWorkload(profile);
  uint64_t diff_files = 0;
  for (const auto& [name, data] : pair.new_tree) {
    auto it = pair.old_tree.find(name);
    if (it == pair.old_tree.end() || it->second != data) {
      ++diff_files;
    }
  }
  report.AddWorkload(dataset, pair.new_tree.size(),
                     bench::CollectionBytes(pair.new_tree));
  std::printf("\n%s: %zu -> %zu files, %.1f MB, %llu differing\n", dataset,
              pair.old_tree.size(), pair.new_tree.size(),
              bench::CollectionBytes(pair.new_tree) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(diff_files));
  std::printf("%-10s %12s %8s %10s %9s %8s %10s %10s\n", "protocol",
              "total KB", "rounds", "link sec", "adopted", "small",
              "sessioned", "wall ms");

  SyncConfig config;

  for (int which = 0; which < 2; ++which) {
    SimulatedChannel channel;
    obs::SyncObserver observer;
    bench::WallTimer timer;
    Row row;
    if (which == 0) {
      row.protocol = "batched";
      auto r = SyncCollectionBatched(pair.old_tree, pair.new_tree, config,
                                     channel, &observer);
      if (!r.ok()) {
        std::fprintf(stderr, "batched sync failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (r->reconstructed != pair.new_tree) {
        std::fprintf(stderr, "batched sync produced a wrong tree\n");
        return 1;
      }
      row.stats = r->stats;
      row.rounds = static_cast<uint64_t>(channel.stats().roundtrips);
    } else {
      row.protocol = "tree";
      TreeSyncParams params;
      params.config = config;
      auto r = SyncCollectionTree(pair.old_tree, pair.new_tree, params,
                                  channel, &observer);
      if (!r.ok()) {
        std::fprintf(stderr, "tree sync failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (r->reconstructed != pair.new_tree) {
        std::fprintf(stderr, "tree sync produced a wrong tree\n");
        return 1;
      }
      row.stats = r->stats;
      row.rounds = static_cast<uint64_t>(r->stats.roundtrips);
      row.adopted = r->files_adopted;
      row.small = r->files_small;
      row.sessioned = r->files_sessioned;
    }
    uint64_t wall = timer.Ns();
    double link_sec = link.TransferSeconds(row.stats);
    std::printf("%-10s %12.1f %8llu %10.2f %9llu %8llu %10llu %10.1f\n",
                row.protocol, row.stats.total_bytes() / 1024.0,
                static_cast<unsigned long long>(row.rounds), link_sec,
                static_cast<unsigned long long>(row.adopted),
                static_cast<unsigned long long>(row.small),
                static_cast<unsigned long long>(row.sessioned),
                wall / 1e6);
    std::string name = std::string(dataset) + ", " + row.protocol;
    report.Add(name)
        .Config("protocol", row.protocol)
        .Config("dataset", dataset)
        .Observed(observer)
        .Rounds(row.rounds)
        .WallNs(wall);
  }
  return 0;
}

int Run(bench::JsonReport& report, int num_files) {
  // The paper's slow-link setting: modem-class bandwidth, 200 ms RTT.
  LinkModel link;
  link.downstream_bytes_per_sec = 64 * 1024;
  link.upstream_bytes_per_sec = 16 * 1024;
  link.roundtrip_latency_sec = 0.2;

  if (RunWorkload(report, "release-tree", ReleaseTreeProfile(num_files),
                  link) != 0) {
    return 1;
  }
  if (RunWorkload(report, "web-tree", WebTreeProfile(num_files), link) !=
      0) {
    return 1;
  }

  // Pure path churn: every byte already present locally under another
  // name. The tree protocol should close this with the manifest walk
  // alone — no literal data at all.
  TreeChurnProfile rename_only = ReleaseTreeProfile(num_files / 10);
  rename_only.seed = 0x4E4A;
  rename_only.frac_unchanged = 0.9;
  rename_only.frac_renamed = 0.1;
  rename_only.frac_edited = 0;
  rename_only.frac_deleted = 0;
  rename_only.files_added = 0;
  rename_only.dir_renames = 2;
  if (RunWorkload(report, "pure-rename", rename_only, link) != 0) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  int num_files = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--files=", 8) == 0) {
      num_files = std::atoi(argv[i] + 8);
      if (num_files < 100) {
        std::fprintf(stderr, "--files must be >= 100\n");
        return 2;
      }
    }
  }
  fsx::bench::JsonReport report(
      "tree_sweep",
      "whole-tree sync at scale: manifest walk + adoption vs batched");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Tree sweep",
      "manifest reconciliation + rename adoption vs per-file announce");
  int rc = fsx::Run(report, num_files);
  return rc != 0 ? rc : report.Write();
}
