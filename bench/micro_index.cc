// Microbenchmark for the shared matching-core index: the flat
// open-addressing BlockIndex (with its 2^16-bit prefilter) against the
// `std::unordered_map<uint32_t, std::vector<uint32_t>>` tables it
// replaced in the protocol scan loops. Three workloads: table build,
// probe-hit (every key present), and probe-miss (the per-byte scan's
// common case — almost no window position matches a block).
//
// Run with --json[=path] to emit BENCH_micro_index.json (fsx-bench-v1).
// The PR acceptance bar is flat >= 1.5x map on the probe-miss workload.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "fsync/index/block_index.h"
#include "fsync/util/random.h"

namespace fsx {
namespace {

constexpr size_t kBlocks = 16 * 1024;    // typical signature-table size
constexpr size_t kProbes = 8'000'000;    // window positions scanned
constexpr int kReps = 3;                 // best-of reps per cell

// Defeats dead-code elimination without memory fences.
volatile uint64_t g_sink = 0;

std::vector<uint32_t> MakeKeys(Rng& rng, size_t n) {
  std::vector<uint32_t> keys(n);
  for (uint32_t& k : keys) {
    k = static_cast<uint32_t>(rng.Next());
  }
  return keys;
}

uint64_t BestOf(int reps, const std::function<uint64_t()>& run) {
  uint64_t best = ~uint64_t{0};
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer t;
    g_sink += run();
    uint64_t ns = t.Ns();
    best = ns < best ? ns : best;
  }
  return best;
}

struct Cell {
  uint64_t flat_ns = 0;
  uint64_t map_ns = 0;
  double Speedup() const {
    return map_ns == 0 ? 0.0
                       : static_cast<double>(map_ns) /
                             static_cast<double>(flat_ns);
  }
};

Cell BenchBuild(const std::vector<uint32_t>& keys) {
  Cell c;
  c.flat_ns = BestOf(kReps, [&] {
    BlockIndex index;
    index.Reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      index.Insert(keys[i], i, static_cast<uint32_t>(i));
    }
    return static_cast<uint64_t>(index.size());
  });
  c.map_ns = BestOf(kReps, [&] {
    std::unordered_map<uint32_t, std::vector<uint32_t>> map;
    map.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      map[keys[i]].push_back(static_cast<uint32_t>(i));
    }
    return static_cast<uint64_t>(map.size());
  });
  return c;
}

// Probes with keys drawn from `probe_keys`; `hits` is informational.
Cell BenchProbe(const std::vector<uint32_t>& table_keys,
                const std::vector<uint32_t>& probe_keys) {
  BlockIndex index;
  index.Reserve(table_keys.size());
  std::unordered_map<uint32_t, std::vector<uint32_t>> map;
  map.reserve(table_keys.size());
  for (size_t i = 0; i < table_keys.size(); ++i) {
    index.Insert(table_keys[i], i, static_cast<uint32_t>(i));
    map[table_keys[i]].push_back(static_cast<uint32_t>(i));
  }

  Cell c;
  c.flat_ns = BestOf(kReps, [&] {
    uint64_t found = 0;
    for (uint32_t key : probe_keys) {
      if (index.MaybeContains(key)) {
        const BlockIndex::Entry* e = index.FindFirst(key);
        if (e != nullptr) {
          found += e->idx;
        }
      }
    }
    return found;
  });
  c.map_ns = BestOf(kReps, [&] {
    uint64_t found = 0;
    for (uint32_t key : probe_keys) {
      auto it = map.find(key);
      if (it != map.end()) {
        found += it->second.front();
      }
    }
    return found;
  });
  return c;
}

void Report(const char* what, const Cell& c, uint64_t ops) {
  std::printf("  %-12s flat %8.1f ms   map %8.1f ms   speedup %.2fx"
              "   (%.1f ns/op flat)\n",
              what, c.flat_ns / 1e6, c.map_ns / 1e6, c.Speedup(),
              static_cast<double>(c.flat_ns) / ops);
}

int Main(int argc, char** argv) {
  bench::JsonReport report("micro_index",
                           "Flat block index vs unordered_map: build and "
                           "probe costs of the matching core");
  report.ParseArgs(argc, argv);

  Rng rng(7);
  std::vector<uint32_t> table_keys = MakeKeys(rng, kBlocks);

  // Probe-hit: every probe is a present key (cycled).
  std::vector<uint32_t> hit_probes(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    hit_probes[i] = table_keys[i % table_keys.size()];
  }
  // Probe-miss: random 32-bit keys; with 16K entries in a 2^32 key
  // space, essentially every probe misses — the scan loop's common case.
  std::vector<uint32_t> miss_probes = MakeKeys(rng, kProbes);

  bench::PrintHeader("micro_index",
                     "flat BlockIndex vs unordered_map (matching core)");
  std::printf("blocks=%zu probes=%zu reps=%d (best-of)\n\n", kBlocks,
              kProbes, kReps);

  Cell build = BenchBuild(table_keys);
  Report("build", build, kBlocks);
  Cell hit = BenchProbe(table_keys, hit_probes);
  Report("probe-hit", hit, kProbes);
  Cell miss = BenchProbe(table_keys, miss_probes);
  Report("probe-miss", miss, kProbes);
  std::printf("\nsink=%" PRIu64 "\n", g_sink);

  report.AddWorkload("synthetic-weak-hashes", 1,
                     kBlocks * sizeof(uint32_t) +
                         kProbes * sizeof(uint32_t));
  auto add = [&](const std::string& name, uint64_t ns, uint64_t ops) {
    report.Add(name)
        .Config("blocks", uint64_t{kBlocks})
        .Config("ops", ops)
        .WallNs(ns)
        .Total(ops * sizeof(uint32_t));
  };
  add("flat_build", build.flat_ns, kBlocks);
  add("map_build", build.map_ns, kBlocks);
  add("flat_probe_hit", hit.flat_ns, kProbes);
  add("map_probe_hit", hit.map_ns, kProbes);
  add("flat_probe_miss", miss.flat_ns, kProbes);
  add("map_probe_miss", miss.map_ns, kProbes);

  if (miss.Speedup() < 1.5) {
    std::printf("WARNING: probe-miss speedup %.2fx below the 1.5x bar\n",
                miss.Speedup());
  }
  return report.Write();
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) { return fsx::Main(argc, argv); }
