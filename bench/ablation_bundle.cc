// Ablation: per-file synchronization vs synchronizing the whole release
// as one bundled stream (the tar form the paper's gcc/emacs data sets
// shipped as). Bundling lets block matches cross file boundaries (a
// function moved between files still matches), but gives up the cheap
// per-file unchanged-skip and makes the session monolithic.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/core/session.h"
#include "fsync/workload/bundle.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  using bench::Kb;
  ReleaseProfile profile = bench::BenchGccProfile();
  profile.num_files = 80;  // the bundle session is O(total size)
  ReleasePair pair = MakeRelease(profile);
  uint64_t total = bench::CollectionBytes(pair.new_release);
  report.AddWorkload("gcc", pair.new_release.size(), total);
  std::printf("data set: gcc-like, %zu files, %.1f MiB\n\n",
              pair.new_release.size(), total / 1048576.0);

  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;

  obs::SyncObserver per_file_obs;
  bench::WallTimer per_file_timer;
  auto per_file = SyncCollection(pair.old_release, pair.new_release, config,
                                 &per_file_obs);
  if (!per_file.ok()) {
    std::fprintf(stderr, "per-file sync failed: %s\n",
                 per_file.status().ToString().c_str());
    return 1;
  }
  report.Add("per-file sessions")
      .Config("mode", "per-file")
      .Observed(per_file_obs)
      .Rounds(per_file->stats.roundtrips)
      .WallNs(per_file_timer.Ns());

  Bytes old_bundle = BundleCollection(pair.old_release);
  Bytes new_bundle = BundleCollection(pair.new_release);
  SimulatedChannel channel;
  obs::SyncObserver bundle_obs;
  bench::WallTimer bundle_timer;
  auto bundled = SynchronizeFile(old_bundle, new_bundle, config, channel,
                                 &bundle_obs);
  if (!bundled.ok()) {
    std::fprintf(stderr, "bundle sync failed: %s\n",
                 bundled.status().ToString().c_str());
    return 1;
  }
  auto unpacked = UnbundleCollection(bundled->reconstructed);
  if (!unpacked.ok() || *unpacked != pair.new_release) {
    std::fprintf(stderr, "bundle round-trip mismatch\n");
    return 1;
  }
  report.Add("one bundled session")
      .Config("mode", "bundle")
      .Observed(bundle_obs)
      .Rounds(bundled->stats.roundtrips)
      .WallNs(bundle_timer.Ns());

  std::printf("%-28s %12s %12s %12s\n", "mode", "map KB", "delta KB",
              "total KB");
  std::printf("%-28s %12.1f %12.1f %12.1f\n", "per-file sessions",
              Kb(per_file->map_server_to_client_bytes +
                 per_file->map_client_to_server_bytes),
              Kb(per_file->delta_bytes),
              Kb(per_file->stats.total_bytes()));
  std::printf("%-28s %12.1f %12.1f %12.1f\n", "one bundled session",
              Kb(bundled->map_server_to_client_bytes +
                 bundled->map_client_to_server_bytes),
              Kb(bundled->delta_bytes), Kb(bundled->stats.total_bytes()));
  std::printf("\n(bundling finds cross-file matches and drops per-file "
              "headers, but\n pays hash traffic even for regions the "
              "fingerprint skip would have\n covered; which wins depends "
              "on the unchanged-file fraction)\n");
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "ablation_bundle",
      "per-file vs bundled-collection synchronization");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader("Ablation (bundle)",
                          "per-file vs bundled-collection synchronization");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
