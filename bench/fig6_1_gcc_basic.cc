// Figure 6.1: performance of the basic protocol with different minimum
// block sizes on the gcc data set, compared to rsync and zdelta.
//
// Expected shape (paper): total cost is U-shaped in the minimum block
// size with the optimum around 16-128 bytes; even the basic protocol
// beats rsync-with-best-block-size; the delta compressor lower-bounds
// everything at roughly half the protocol's best cost.
//
// `--json[=path]` additionally writes BENCH_fig6_1.json (fsx-bench-v1).
#include "bench/basic_sweep.h"

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "fig6_1", "basic protocol vs min block size (gcc data set)");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader("Figure 6.1",
                          "basic protocol vs min block size (gcc data set)");
  int rc = fsx::bench_basic::Run(fsx::bench::BenchGccProfile(), "gcc",
                                 report);
  return rc != 0 ? rc : report.Write();
}
