// Figure 6.1: performance of the basic protocol with different minimum
// block sizes on the gcc data set, compared to rsync and zdelta.
//
// Expected shape (paper): total cost is U-shaped in the minimum block
// size with the optimum around 16-128 bytes; even the basic protocol
// beats rsync-with-best-block-size; the delta compressor lower-bounds
// everything at roughly half the protocol's best cost.
#include "bench/basic_sweep.h"

int main() {
  fsx::bench::PrintHeader("Figure 6.1",
                          "basic protocol vs min block size (gcc data set)");
  return fsx::bench_basic::Run(fsx::bench::BenchGccProfile(), "gcc");
}
