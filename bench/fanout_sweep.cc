// Fan-out sweep: amortized server cost per additional client when N
// clients sync the same release pair (the paper's headline scenario — a
// collection recrawled nightly and served to its subscriber population),
// with a cold server (no cache; every client pays full signature/delta
// recomputation) versus a warm shared signature/delta cache
// (fsync/cache/): compute once, then serve cached bytes.
//
// Expected shape (docs/caching.md cost model): cold server CPU grows
// linearly in N, cost(N) ≈ N × compute; warm collapses to
// cost(N) ≈ compute_once + N × bytes_shipped, so total server CPU is
// nearly flat in N and the per-additional-client CPU drops by well over
// an order of magnitude by N = 64. Wire bytes are identical in every
// row pair — caching is server-local (tests/cache_conformance_test.cc).
//
// Covers both server paths: the interactive per-file session protocol
// (transcript-chain memoization) and the broadcast hash-cast path
// (signature-set + per-version delta memoization).
//
// `--json[=path]` additionally writes BENCH_fanout_sweep.json
// (fsx-bench-v1).
#include <cinttypes>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "fsync/cache/sync_cache.h"
#include "fsync/core/broadcast.h"

namespace fsx {
namespace {

constexpr int kClientSweep[] = {1, 4, 16, 64, 256};

struct FanoutTotals {
  uint64_t server_cpu_ns = 0;  // live server compute across all sessions
  uint64_t wire_bytes = 0;     // per-client wire traffic, summed
  uint64_t wall_ns = 0;
  uint64_t sessions = 0;
};

// The stale subset of the release pair: only files whose sessions do real
// work (unchanged files are fingerprint-skipped and would dilute the
// per-client numbers with no-ops).
std::vector<std::pair<const Bytes*, const Bytes*>> StalePairs(
    const Collection& oldc, const Collection& newc) {
  static const Bytes kEmpty;
  std::vector<std::pair<const Bytes*, const Bytes*>> pairs;
  for (const auto& [name, current] : newc) {
    auto it = oldc.find(name);
    const Bytes* old = it != oldc.end() ? &it->second : &kEmpty;
    if (*old == current) {
      continue;
    }
    pairs.emplace_back(old, &current);
  }
  return pairs;
}

// N clients, each running the full interactive session per stale file.
// `cache` == nullptr is the cold server; a shared cache is the warm one.
StatusOr<FanoutTotals> RunSessionFanout(
    const std::vector<std::pair<const Bytes*, const Bytes*>>& pairs,
    const std::vector<Fingerprint>& fps, const SyncConfig& config,
    int clients, cache::SyncCache* cache) {
  FanoutTotals totals;
  bench::WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      SimulatedChannel channel;
      SyncSession session(*pairs[i].first, *pairs[i].second, config);
      session.set_server_cache(cache);
      session.set_server_fingerprint_hint(fps[i]);
      FSYNC_ASSIGN_OR_RETURN(FileSyncResult r, session.Run(channel));
      if (r.reconstructed != *pairs[i].second) {
        return Status::Internal("fanout sweep: reconstruction mismatch");
      }
      totals.server_cpu_ns += r.server_cpu_ns;
      totals.wire_bytes += r.stats.total_bytes();
      ++totals.sessions;
    }
  }
  totals.wall_ns = timer.Ns();
  return totals;
}

// N clients served over the broadcast path: the server builds (or
// fetches) each file's hash cast once per client request and answers the
// client's range request with a (cached) delta. Server CPU is the cast
// build + delta encode time; the client-side work (ApplyHashCast) is
// excluded from it, exactly as in a real deployment.
StatusOr<FanoutTotals> RunCastFanout(
    const std::vector<std::pair<const Bytes*, const Bytes*>>& pairs,
    const HashCastConfig& config, int clients, cache::SyncCache* cache) {
  FanoutTotals totals;
  bench::WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    for (const auto& [old, current] : pairs) {
      bench::WallTimer server_time;
      FSYNC_ASSIGN_OR_RETURN(Bytes cast,
                             BuildHashCastCached(*current, config, cache));
      totals.server_cpu_ns += server_time.Ns();
      FSYNC_ASSIGN_OR_RETURN(CastMap map, ApplyHashCast(*old, cast));
      Bytes request = EncodeCastRequest(map);
      bench::WallTimer delta_time;
      FSYNC_ASSIGN_OR_RETURN(
          Bytes delta, MakeCastDeltaCached(*current, request, config, cache));
      totals.server_cpu_ns += delta_time.Ns();
      FSYNC_ASSIGN_OR_RETURN(Bytes got,
                             ApplyCastDelta(*old, map, delta));
      if (got != *current) {
        return Status::Internal("fanout sweep: cast mismatch");
      }
      totals.wire_bytes += cast.size() + request.size() + delta.size();
      ++totals.sessions;
    }
  }
  totals.wall_ns = timer.Ns();
  return totals;
}

void PrintRow(const char* proto, const char* mode, int clients,
              const FanoutTotals& t) {
  std::printf(
      "  %-7s %-4s N=%3d  server CPU %9.2f ms  (%8.3f ms/client)  "
      "wire %9.1f KB  wall %8.2f ms\n",
      proto, mode, clients, t.server_cpu_ns / 1e6,
      t.server_cpu_ns / 1e6 / clients, t.wire_bytes / 1024.0,
      t.wall_ns / 1e6);
}

void AddRow(bench::JsonReport& report, const std::string& name,
            const char* mode, int clients, const FanoutTotals& t,
            cache::SyncCache* cache) {
  bench::BenchResult& row = report.Add(name);
  row.Config("mode", mode)
      .Config("clients", static_cast<uint64_t>(clients))
      .Config("sessions", t.sessions)
      .Config("server_cpu_ns", t.server_cpu_ns)
      .Config("server_cpu_ns_per_client",
              t.server_cpu_ns / static_cast<uint64_t>(clients))
      .Rounds(static_cast<uint64_t>(clients))
      .WallNs(t.wall_ns)
      .Total(t.wire_bytes);
  if (cache != nullptr) {
    cache::CacheStats s = cache->Stats();
    row.Config("cache_hits", s.hits)
        .Config("cache_misses", s.misses)
        .Config("cache_bytes_used", s.bytes_used)
        .Config("cache_cpu_saved_ns", s.cpu_saved_ns);
  }
}

int Run(bench::JsonReport& report) {
  ReleaseProfile profile = GccLikeProfile();
  profile.num_files = 12;
  profile.min_file_bytes = 8 * 1024;
  profile.max_file_bytes = 48 * 1024;
  profile.frac_unchanged = 0.25;
  ReleasePair release = MakeRelease(profile);
  report.AddWorkload("fanout-gcc-like",
                     release.new_release.size(),
                     bench::CollectionBytes(release.new_release));

  std::vector<std::pair<const Bytes*, const Bytes*>> pairs =
      StalePairs(release.old_release, release.new_release);
  std::vector<Fingerprint> fps;
  fps.reserve(pairs.size());
  for (const auto& [old, current] : pairs) {
    fps.push_back(FileFingerprint(*current));
  }
  std::printf("%zu stale files per client\n\n", pairs.size());

  SyncConfig config;
  HashCastConfig cast_config;

  uint64_t cold64 = 0;
  uint64_t warm64 = 0;
  std::printf("interactive sessions (transcript-chain cache):\n");
  cache::SyncCache session_cache(/*max_bytes=*/0);
  for (int n : kClientSweep) {
    StatusOr<FanoutTotals> cold =
        RunSessionFanout(pairs, fps, config, n, nullptr);
    if (!cold.ok()) {
      std::fprintf(stderr, "cold run failed: %s\n",
                   cold.status().message().c_str());
      return 1;
    }
    PrintRow("session", "cold", n, cold.value());
    AddRow(report, "session_cold/N=" + std::to_string(n), "cold", n,
           cold.value(), nullptr);
    StatusOr<FanoutTotals> warm =
        RunSessionFanout(pairs, fps, config, n, &session_cache);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm run failed: %s\n",
                   warm.status().message().c_str());
      return 1;
    }
    PrintRow("session", "warm", n, warm.value());
    AddRow(report, "session_warm/N=" + std::to_string(n), "warm", n,
           warm.value(), &session_cache);
    if (cold.value().wire_bytes != warm.value().wire_bytes) {
      std::fprintf(stderr, "wire bytes differ cold vs warm at N=%d\n", n);
      return 1;
    }
    if (n == 64) {
      cold64 = cold.value().server_cpu_ns;
      warm64 = warm.value().server_cpu_ns;
    }
  }

  std::printf("\nbroadcast hash cast (signature + delta cache):\n");
  cache::SyncCache cast_cache(/*max_bytes=*/0);
  for (int n : kClientSweep) {
    StatusOr<FanoutTotals> cold =
        RunCastFanout(pairs, cast_config, n, nullptr);
    if (!cold.ok()) {
      std::fprintf(stderr, "cast cold run failed: %s\n",
                   cold.status().message().c_str());
      return 1;
    }
    PrintRow("cast", "cold", n, cold.value());
    AddRow(report, "cast_cold/N=" + std::to_string(n), "cold", n,
           cold.value(), nullptr);
    StatusOr<FanoutTotals> warm =
        RunCastFanout(pairs, cast_config, n, &cast_cache);
    if (!warm.ok()) {
      std::fprintf(stderr, "cast warm run failed: %s\n",
                   warm.status().message().c_str());
      return 1;
    }
    PrintRow("cast", "warm", n, warm.value());
    AddRow(report, "cast_warm/N=" + std::to_string(n), "warm", n,
           warm.value(), &cast_cache);
    if (cold.value().wire_bytes != warm.value().wire_bytes) {
      std::fprintf(stderr,
                   "cast wire bytes differ cold vs warm at N=%d\n", n);
      return 1;
    }
  }

  if (warm64 > 0) {
    std::printf("\nserver CPU at N=64: cold %.2f ms, warm %.2f ms "
                "(%.1fx reduction)\n",
                cold64 / 1e6, warm64 / 1e6,
                static_cast<double>(cold64) / warm64);
  } else if (cold64 > 0) {
    std::printf("\nserver CPU at N=64: cold %.2f ms, warm 0 ms "
                "(every request served from cache)\n",
                cold64 / 1e6);
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "fanout_sweep",
      "amortized server cost per additional client, warm vs cold cache");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Fan-out sweep",
      "N clients, one server: amortized signature/delta cost");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
