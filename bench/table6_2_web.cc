// Table 6.2: cost of updating a replicated web collection, for various
// update frequencies (sync every 1, 2, and 7 days) and methods. The
// paper's collection is 10,000 nightly-recrawled pages; we run a scaled
// collection and report both the measured KB and a per-10,000-pages
// extrapolation for direct comparison with the paper's table.
//
// Expected shape (paper): ours beats rsync by close to a factor of 2;
// savings per page shrink as the gap grows (more changed content), and
// all methods sit far below full/gzip transfer.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/workload/web.h"

namespace fsx {
namespace {

int Run(bench::JsonReport& report) {
  using bench::Kb;
  WebProfile profile;
  profile.num_pages = 400;  // scaled from the paper's 10,000
  profile.min_page_bytes = 4 * 1024;  // ~13 KB/page average as in paper
  profile.max_page_bytes = 64 * 1024;
  WebCollectionModel model(profile);
  uint64_t total = bench::CollectionBytes(model.Snapshot(0));
  report.AddWorkload("web", profile.num_pages, total);
  std::printf("collection: %d pages, %.1f MiB (scale factor to paper: "
              "%.1fx pages)\n\n",
              profile.num_pages, total / 1048576.0,
              10000.0 / profile.num_pages);

  std::printf("%-10s %-22s %12s %16s\n", "interval", "method",
              "cost KB", "KB per 10k pages");

  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;
  config.verify.group_size = 8;
  config.verify.max_batches = 2;
  RsyncParams rsync_params;

  double scale = 10000.0 / profile.num_pages;
  for (int gap : {1, 2, 7}) {
    const Collection& old_snap = model.Snapshot(0);
    const Collection& new_snap = model.Snapshot(gap);

    auto row = [&](const char* method, uint64_t bytes) {
      report.Add(method)
          .Config("interval_days", static_cast<uint64_t>(gap))
          .Total(bytes);
      std::printf("%6d day %-22s %12.1f %16.0f\n", gap, method, Kb(bytes),
                  Kb(bytes) * scale);
    };
    row("uncompressed full",
        CollectionFullTransferBytes(old_snap, new_snap));
    row("compressed full",
        CollectionCompressedTransferBytes(old_snap, new_snap));

    obs::SyncObserver rs_obs;
    bench::WallTimer rs_timer;
    auto rs = SyncCollectionRsync(old_snap, new_snap, rsync_params,
                                  &rs_obs);
    if (!rs.ok()) return 1;
    report.Add("rsync (b=700)")
        .Config("interval_days", static_cast<uint64_t>(gap))
        .Observed(rs_obs)
        .Rounds(rs->stats.roundtrips)
        .WallNs(rs_timer.Ns());
    std::printf("%6d day %-22s %12.1f %16.0f\n", gap, "rsync (b=700)",
                Kb(rs->stats.total_bytes()),
                Kb(rs->stats.total_bytes()) * scale);

    obs::SyncObserver ours_obs;
    bench::WallTimer ours_timer;
    auto ours = SyncCollection(old_snap, new_snap, config, &ours_obs);
    if (!ours.ok()) return 1;
    if (ours->reconstructed != new_snap) {
      std::fprintf(stderr, "reconstruction mismatch!\n");
      return 1;
    }
    report.Add("this work")
        .Config("interval_days", static_cast<uint64_t>(gap))
        .Observed(ours_obs)
        .Rounds(ours->stats.roundtrips)
        .WallNs(ours_timer.Ns());
    std::printf("%6d day %-22s %12.1f %16.0f\n", gap, "this work",
                Kb(ours->stats.total_bytes()),
                Kb(ours->stats.total_bytes()) * scale);

    auto bound = CollectionDeltaBytes(old_snap, new_snap, DeltaCodec::kZd);
    if (!bound.ok()) return 1;
    row("zdelta-style (bound)", *bound);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "table6_2",
      "updating a replicated web collection at various frequencies");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader(
      "Table 6.2", "updating a replicated web collection at various "
                   "frequencies");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
