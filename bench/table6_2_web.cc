// Table 6.2: cost of updating a replicated web collection, for various
// update frequencies (sync every 1, 2, and 7 days) and methods. The
// paper's collection is 10,000 nightly-recrawled pages; we run a scaled
// collection and report both the measured KB and a per-10,000-pages
// extrapolation for direct comparison with the paper's table.
//
// Expected shape (paper): ours beats rsync by close to a factor of 2;
// savings per page shrink as the gap grows (more changed content), and
// all methods sit far below full/gzip transfer.
#include <cstdio>

#include "bench/bench_util.h"
#include "fsync/workload/web.h"

namespace fsx {
namespace {

int Run() {
  using bench::Kb;
  WebProfile profile;
  profile.num_pages = 400;  // scaled from the paper's 10,000
  profile.min_page_bytes = 4 * 1024;  // ~13 KB/page average as in paper
  profile.max_page_bytes = 64 * 1024;
  WebCollectionModel model(profile);
  uint64_t total = bench::CollectionBytes(model.Snapshot(0));
  std::printf("collection: %d pages, %.1f MiB (scale factor to paper: "
              "%.1fx pages)\n\n",
              profile.num_pages, total / 1048576.0,
              10000.0 / profile.num_pages);

  std::printf("%-10s %-22s %12s %16s\n", "interval", "method",
              "cost KB", "KB per 10k pages");

  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;
  config.verify.group_size = 8;
  config.verify.max_batches = 2;
  RsyncParams rsync_params;

  double scale = 10000.0 / profile.num_pages;
  for (int gap : {1, 2, 7}) {
    const Collection& old_snap = model.Snapshot(0);
    const Collection& new_snap = model.Snapshot(gap);

    auto row = [&](const char* method, uint64_t bytes) {
      std::printf("%6d day %-22s %12.1f %16.0f\n", gap, method, Kb(bytes),
                  Kb(bytes) * scale);
    };
    row("uncompressed full",
        CollectionFullTransferBytes(old_snap, new_snap));
    row("compressed full",
        CollectionCompressedTransferBytes(old_snap, new_snap));

    auto rs = SyncCollectionRsync(old_snap, new_snap, rsync_params);
    if (!rs.ok()) return 1;
    row("rsync (b=700)", rs->stats.total_bytes());

    auto ours = SyncCollection(old_snap, new_snap, config);
    if (!ours.ok()) return 1;
    if (ours->reconstructed != new_snap) {
      std::fprintf(stderr, "reconstruction mismatch!\n");
      return 1;
    }
    row("this work", ours->stats.total_bytes());

    auto bound = CollectionDeltaBytes(old_snap, new_snap, DeltaCodec::kZd);
    if (!bound.ok()) return 1;
    row("zdelta-style (bound)", *bound);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main() {
  fsx::bench::PrintHeader(
      "Table 6.2", "updating a replicated web collection at various "
                   "frequencies");
  return fsx::Run();
}
