// Ablation: the contribution of each technique that DESIGN.md calls out.
// Starts from the all-techniques configuration and removes one technique
// at a time; also sweeps candidate-hash width (global_extra_bits), the
// knob behind the paper's "log2(n/b)+extra bits per hash" formula.
#include <cstdio>

#include "bench/bench_util.h"

namespace fsx {
namespace {

SyncConfig FullConfig() {
  SyncConfig config;
  config.start_block_size = 2048;
  config.min_block_size = 64;
  config.min_continuation_block = 16;
  config.verify.group_size = 8;
  config.verify.continuation_group_size = 2;
  config.verify.max_batches = 2;
  return config;
}

int Run(bench::JsonReport& report) {
  using bench::Kb;
  ReleasePair pair = MakeRelease(bench::BenchGccProfile());
  report.AddWorkload("gcc", pair.new_release.size(),
                     bench::CollectionBytes(pair.new_release));
  std::printf("data set: gcc-like, %zu files, %.1f MiB\n\n",
              pair.new_release.size(),
              bench::CollectionBytes(pair.new_release) / 1048576.0);

  std::printf("%-34s %12s %12s %12s\n", "variant", "map KB", "delta KB",
              "total KB");
  auto run_one = [&](const char* label, const SyncConfig& config) -> int {
    obs::SyncObserver observer;
    bench::WallTimer timer;
    auto r = SyncCollection(pair.old_release, pair.new_release, config,
                            &observer);
    if (!r.ok()) {
      std::fprintf(stderr, "sync failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    report.Add(label)
        .Config("min_block", config.min_block_size)
        .Config("group_size",
                static_cast<uint64_t>(config.verify.group_size))
        .Observed(observer)
        .Rounds(r->stats.roundtrips)
        .WallNs(timer.Ns());
    std::printf("%-34s %12.1f %12.1f %12.1f\n", label,
                Kb(r->map_server_to_client_bytes +
                   r->map_client_to_server_bytes),
                Kb(r->delta_bytes), Kb(r->stats.total_bytes()));
    return 0;
  };

  if (run_one("all techniques", FullConfig())) return 1;

  SyncConfig no_decomp = FullConfig();
  no_decomp.use_decomposable = false;
  if (run_one("- decomposable hashes", no_decomp)) return 1;

  SyncConfig no_cont = FullConfig();
  no_cont.use_continuation = false;
  no_cont.min_continuation_block = no_cont.min_block_size;
  if (run_one("- continuation hashes", no_cont)) return 1;

  SyncConfig no_groups = FullConfig();
  no_groups.verify.group_size = 1;
  no_groups.verify.continuation_group_size = 1;
  no_groups.verify.max_batches = 1;
  if (run_one("- group verification", no_groups)) return 1;

  SyncConfig one_round = FullConfig();
  one_round.max_roundtrips = 2;
  if (run_one("- recursion (2-roundtrip cap)", one_round)) return 1;

  SyncConfig local = FullConfig();
  local.local_radius = 2;
  local.continuation_bits = 10;
  if (run_one("+ local hashes (radius 2)", local)) return 1;

  std::printf("\ncandidate hash width sweep (extra bits beyond log2 n):\n");
  for (int extra : {2, 4, 8, 12, 16}) {
    SyncConfig c = FullConfig();
    c.global_extra_bits = extra;
    char label[48];
    std::snprintf(label, sizeof(label), "extra_bits=%d", extra);
    if (run_one(label, c)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fsx

int main(int argc, char** argv) {
  fsx::bench::JsonReport report(
      "ablation_techniques",
      "per-technique contribution and hash-width sweep");
  report.ParseArgs(argc, argv);
  fsx::bench::PrintHeader("Ablation",
                          "per-technique contribution and hash-width sweep");
  int rc = fsx::Run(report);
  return rc != 0 ? rc : report.Write();
}
