// Microbenchmarks of the compression substrate: the stream codec and the
// two delta codecs (throughput and, via labels, compression ratio).
#include <benchmark/benchmark.h>

#include "fsync/compress/codec.h"
#include "fsync/delta/bsdiff.h"
#include "fsync/delta/vcdiff.h"
#include "fsync/delta/zd.h"
#include "fsync/util/random.h"
#include "fsync/workload/edits.h"
#include "fsync/workload/text_synth.h"

namespace fsx {
namespace {

Bytes MakeText(size_t n) {
  Rng rng(7);
  return SynthSourceFile(rng, n);
}

void BM_Compress(benchmark::State& state) {
  Bytes data = MakeText(state.range(0));
  size_t out_size = 0;
  for (auto _ : state) {
    Bytes packed = Compress(data);
    out_size = packed.size();
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(out_size);
}
BENCHMARK(BM_Compress)->Arg(16 << 10)->Arg(256 << 10);

void BM_Decompress(benchmark::State& state) {
  Bytes data = MakeText(state.range(0));
  Bytes packed = Compress(data);
  for (auto _ : state) {
    auto out = Decompress(packed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Decompress)->Arg(16 << 10)->Arg(256 << 10);

struct DeltaInput {
  Bytes reference;
  Bytes target;
};

DeltaInput MakeDeltaInput(size_t n) {
  Rng rng(9);
  DeltaInput d;
  d.reference = SynthSourceFile(rng, n);
  EditProfile ep;
  ep.num_edits = 10;
  d.target = ApplyEdits(d.reference, ep, rng);
  return d;
}

void BM_ZdEncode(benchmark::State& state) {
  DeltaInput d = MakeDeltaInput(state.range(0));
  size_t out_size = 0;
  for (auto _ : state) {
    auto delta = ZdEncode(d.reference, d.target);
    out_size = delta->size();
    benchmark::DoNotOptimize(delta);
  }
  state.SetBytesProcessed(state.iterations() * d.target.size());
  state.counters["delta_bytes"] = static_cast<double>(out_size);
}
BENCHMARK(BM_ZdEncode)->Arg(64 << 10)->Arg(512 << 10);

void BM_ZdDecode(benchmark::State& state) {
  DeltaInput d = MakeDeltaInput(state.range(0));
  Bytes delta = std::move(ZdEncode(d.reference, d.target)).value();
  for (auto _ : state) {
    auto out = ZdDecode(d.reference, delta);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * d.target.size());
}
BENCHMARK(BM_ZdDecode)->Arg(64 << 10)->Arg(512 << 10);

void BM_VcdiffEncode(benchmark::State& state) {
  DeltaInput d = MakeDeltaInput(state.range(0));
  size_t out_size = 0;
  for (auto _ : state) {
    auto delta = VcdiffEncode(d.reference, d.target);
    out_size = delta->size();
    benchmark::DoNotOptimize(delta);
  }
  state.SetBytesProcessed(state.iterations() * d.target.size());
  state.counters["delta_bytes"] = static_cast<double>(out_size);
}
BENCHMARK(BM_VcdiffEncode)->Arg(64 << 10);

void BM_BsdiffEncode(benchmark::State& state) {
  DeltaInput d = MakeDeltaInput(state.range(0));
  size_t out_size = 0;
  for (auto _ : state) {
    auto delta = BsdiffEncode(d.reference, d.target);
    out_size = delta->size();
    benchmark::DoNotOptimize(delta);
  }
  state.SetBytesProcessed(state.iterations() * d.target.size());
  state.counters["delta_bytes"] = static_cast<double>(out_size);
}
BENCHMARK(BM_BsdiffEncode)->Arg(64 << 10);

}  // namespace
}  // namespace fsx

BENCHMARK_MAIN();
